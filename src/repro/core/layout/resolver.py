"""The Offload Layout Resolver (Section 4's Layout Management unit).

Given the ODF closure of an application, the machine's device inventory
and the Offcode Depot, the resolver:

1. builds the offloading layout graph — one node per Offcode with its
   compatibility vector ("the runtime determines the mapping between the
   Offcode device requirements and the physical devices that are
   installed in the specific host"), one edge per ODF reference;
2. hands it to an ILP solver under the chosen objective;
3. on infeasibility, relaxes droppable (priority > 0) constraints and,
   as the final fallback, "tries to find an Offcode that is capable of
   executing at the host CPU" — i.e. re-solves with every node allowed
   on the host when a host build exists in the depot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import InfeasibleLayoutError, LayoutError
from repro.core.depot import OffcodeDepot
from repro.core.layout.constraints import Constraint
from repro.core.layout.graph import HOST_INDEX, LayoutGraph
from repro.core.layout.objectives import MaximizeOffloading, Objective
from repro.core.layout.solver import SolveResult, default_solver
from repro.core.odf import OdfDocument
from repro.hw.device import DeviceClass, ProgrammableDevice
from repro.hw.machine import Machine

__all__ = ["ResolvedLayout", "OffloadLayoutResolver"]


@dataclass
class ResolvedLayout:
    """The resolver's output: who goes where, and how we got there."""

    placement: Dict[str, str]            # bindname -> device name | "host"
    solve: SolveResult
    graph: LayoutGraph
    relaxed_constraints: List[Constraint] = field(default_factory=list)
    host_fallbacks: List[str] = field(default_factory=list)

    def device_of(self, bindname: str) -> str:
        """Placement of ``bindname`` (device name or 'host')."""
        try:
            return self.placement[bindname]
        except KeyError:
            raise LayoutError(f"{bindname!r} is not in the layout") from None

    def offloaded_count(self) -> int:
        """How many Offcodes left the host."""
        return sum(1 for device in self.placement.values()
                   if device != "host")


class OffloadLayoutResolver:
    """Builds and solves layout graphs for one machine."""

    def __init__(self, machine: Machine, depot: OffcodeDepot,
                 solver=None) -> None:
        self.machine = machine
        self.depot = depot
        self.solver = solver or default_solver()

    # -- graph construction ---------------------------------------------------------

    def build_graph(self, documents: Sequence[OdfDocument],
                    force_host_option: bool = False,
                    pinned: Optional[Dict[str, str]] = None,
                    exclude: Optional[Iterable[str]] = None,
                    banned: Optional[Dict[str, Iterable[str]]] = None
                    ) -> LayoutGraph:
        """One node per document, edges from the ODF import references.

        ``pinned`` fixes the placement of already-deployed Offcodes:
        reusing an Offcode across applications (the Section 5 motivation
        for the ILP) means later deployments must respect where the
        shared instance already runs.

        ``exclude`` removes devices from the candidate set entirely —
        the recovery path uses it to re-solve a layout with a crashed
        device gone, as if it were never installed.

        ``banned`` forbids specific bindname→device pairings without
        touching the global candidate set — live migration bans the
        victim from its (healthy, still-serving-others) source device,
        where ``exclude`` would wrongly evict every co-tenant too.
        Bans are ignored for pinned bindnames: a pin is an explicit,
        stronger statement of intent.
        """
        excluded = frozenset(exclude or ())
        devices = ["host"] + sorted(
            name for name in self.machine.devices if name not in excluded)
        graph = LayoutGraph(devices)
        by_bindname = {d.bindname: d for d in documents}
        pinned = pinned or {}
        banned = banned or {}
        for document in documents:
            if document.bindname in pinned:
                location = pinned[document.bindname]
                if location not in devices:
                    raise LayoutError(
                        f"{document.bindname} pinned to unknown device "
                        f"{location!r}")
                compat = [device == location for device in devices]
            else:
                compat = [self._host_allowed(document, force_host_option)]
                for device_name in devices[1:]:
                    compat.append(self._device_allowed(
                        document, self.machine.devices[device_name]))
                banned_here = frozenset(banned.get(document.bindname, ()))
                if banned_here:
                    compat = [ok and device not in banned_here
                              for ok, device in zip(compat, devices)]
            graph.add_node(document.bindname, compat,
                           price=float(document.image_bytes) / 1024.0)
        for document in documents:
            for imp in document.imports:
                if imp.bindname not in by_bindname:
                    raise LayoutError(
                        f"{document.bindname} imports {imp.bindname!r} "
                        "which is not in the deployment closure")
                graph.constrain(document.bindname, imp.bindname,
                                imp.reference, priority=imp.priority)
        return graph

    def _host_allowed(self, document: OdfDocument,
                      force: bool) -> bool:
        allowed = document.host_capable or force
        return allowed and self.depot.has(document.guid, DeviceClass.HOST)

    def _device_allowed(self, document: OdfDocument,
                        device: ProgrammableDevice) -> bool:
        if not any(t.matches(device) for t in document.targets):
            return False
        if not document.requirements.satisfied_by(device.spec):
            return False
        # Capacity-aware: a device whose memory cannot currently hold
        # the Offcode image (plus declared working memory) is not a
        # viable target — this is the "resource limitations" branch of
        # Section 3.4's fallback rule, caught before the loader runs.
        needed = (document.image_bytes
                  + document.requirements.min_memory_bytes)
        if device.memory.free_bytes < needed:
            return False
        return self.depot.has(document.guid, device.device_class)

    # -- solving ----------------------------------------------------------------------

    def resolve(self, documents: Sequence[OdfDocument],
                objective: Optional[Objective] = None,
                pinned: Optional[Dict[str, str]] = None,
                exclude: Optional[Iterable[str]] = None,
                degraded: bool = False,
                banned: Optional[Dict[str, Iterable[str]]] = None
                ) -> ResolvedLayout:
        """Full pipeline: graph, solve, relax, host-fallback.

        ``degraded`` marks a post-failure re-solve: the final host
        fallback then drops *every* placement constraint, including
        mandatory (priority 0) ones such as GANG edges.  That is sound
        only because recovery pins all surviving Offcodes in place —
        the solver merely chooses homes for the victims — and a dead
        device cannot honour a co-location promise anyway.
        """
        objective = objective or MaximizeOffloading()
        try:
            graph = self.build_graph(documents, pinned=pinned,
                                     exclude=exclude, banned=banned)
        except LayoutError:
            # Some Offcode matches no installed device; fall through to
            # the host-fallback attempt below.
            graph = None

        if graph is not None:
            # Attempt 1: everything as specified.
            result = self._try_solve(graph, objective)
            if result is not None:
                return self._package(result, graph, [], [])

            # Attempt 2: drop relaxable constraints, lowest priority first.
            priorities = sorted({c.priority for c in graph.constraints
                                 if c.priority > 0}, reverse=True)
            for cutoff in priorities:
                relaxed_graph = graph.without_constraints_below(cutoff)
                result = self._try_solve(relaxed_graph, objective)
                if result is not None:
                    dropped = [c for c in graph.constraints
                               if c.priority >= cutoff]
                    return self._package(result, relaxed_graph, dropped, [])

        # Attempt 3: force the host option for every depot-host-capable
        # Offcode and re-solve with no droppable constraints.
        try:
            fallback_graph = self.build_graph(
                documents, force_host_option=True, pinned=pinned,
                exclude=exclude, banned=banned)
        except LayoutError as exc:
            raise InfeasibleLayoutError(
                f"no feasible layout even with host fallback: {exc}"
            ) from exc
        bare = fallback_graph.without_constraints_below(0 if degraded else 1)
        result = self._try_solve(bare, objective)
        if result is not None:
            fallbacks = [name for name, k in result.placement.items()
                         if k == HOST_INDEX]
            dropped = ([c for c in graph.constraints if c.priority > 0]
                       if graph is not None else [])
            return self._package(result, bare, dropped, fallbacks)
        raise InfeasibleLayoutError(
            "no feasible layout even with host fallback; check depot "
            "registrations and device requirements")

    def _try_solve(self, graph: LayoutGraph, objective: Objective
                   ) -> Optional[SolveResult]:
        try:
            problem = objective.build(graph)
            result = self.solver.solve(problem)
        except (InfeasibleLayoutError, LayoutError):
            return None
        violations = graph.check_placement(result.placement)
        if violations:
            raise LayoutError(
                f"solver returned an invalid placement: {violations}")
        return result

    def _package(self, result: SolveResult, graph: LayoutGraph,
                 relaxed: List[Constraint],
                 fallbacks: List[str]) -> ResolvedLayout:
        placement = {name: graph.devices[k]
                     for name, k in result.placement.items()}
        return ResolvedLayout(placement=placement, solve=result,
                              graph=graph, relaxed_constraints=relaxed,
                              host_fallbacks=fallbacks)
