"""ILP formulation of the offloading layout problem (Section 5.1).

The decision variables are binary ``X[n][k]`` — "X^k_n = 1 if Offcode n
should be offloaded to device k" — defined only where the compatibility
vector allows (``C^k_n = 1``).  The equations:

* **Eq. 1 (unique placement)** — every Offcode lands on exactly one
  compatible device: for each n, sum_k X^k_n = 1.  (The paper prints a
  double sum equal to 1; read per-Offcode, as the accompanying text
  "each Offcode can be offloaded to a single device" requires.)
* **Eq. 2 (Pull)** — for every Pull edge and every k: X^k_n = X^k_m.
* **Eq. 3 (Gang)** — equal offload indicators (sums over k >= 1,
  excluding the host: "an Offcode n is not offloaded ... if X^0_n = 1").
* **Eq. 4 (asymmetric Gang)** — for an edge a -> b ("offloading b
  doesn't imply offloading a"): offload(a) <= offload(b).

The objective and any extra capacity rows come from
:mod:`repro.core.layout.objectives`.  The produced
:class:`IlpProblem` is solver-agnostic: "any ILP solver can then be used
to solve the equations given a target optimization function".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import InfeasibleLayoutError, LayoutError
from repro.core.layout.constraints import ConstraintType
from repro.core.layout.graph import HOST_INDEX, LayoutGraph

__all__ = ["LinearConstraint", "IlpProblem", "build_ilp"]

EQ = "=="
LE = "<="


@dataclass(frozen=True)
class LinearConstraint:
    """``sum(coeffs[i] * x[i]) <sense> rhs`` over variable indices."""

    coeffs: Tuple[Tuple[int, float], ...]
    sense: str
    rhs: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.sense not in (EQ, LE):
            raise LayoutError(f"unknown constraint sense {self.sense!r}")

    def evaluate(self, assignment: List[int]) -> float:
        """Left-hand-side value under a 0/1 assignment vector."""
        return sum(c * assignment[i] for i, c in self.coeffs)

    def satisfied(self, assignment: List[int]) -> bool:
        """Whether the row holds under a 0/1 assignment vector."""
        value = self.evaluate(assignment)
        return value == self.rhs if self.sense == EQ else value <= self.rhs


@dataclass
class IlpProblem:
    """A 0-1 integer program with exactly-one variable groups.

    ``groups[g]`` lists the variable indices of Offcode ``g``'s placement
    choices (Eq. 1 is implied: exactly one per group).  ``constraints``
    holds Eqs. 2-4 plus objective-supplied capacity rows.  ``objective``
    maps variable index -> coefficient, to be **maximized**.
    """

    var_names: List[str]                       # "node@device" labels
    groups: List[List[int]]                    # per-node variable indices
    group_names: List[str]
    constraints: List[LinearConstraint] = field(default_factory=list)
    objective: Dict[int, float] = field(default_factory=dict)
    var_meta: List[Tuple[str, int]] = field(default_factory=list)
    devices: Tuple[str, ...] = ()

    @property
    def num_vars(self) -> int:
        """Total number of binary variables."""
        return len(self.var_names)

    def assignment_to_placement(self, values: List[int]) -> Dict[str, int]:
        """Convert a 0/1 vector to node-name -> device-index."""
        placement: Dict[str, int] = {}
        for index, value in enumerate(values):
            if value:
                name, device_index = self.var_meta[index]
                if name in placement:
                    raise LayoutError(
                        f"solution places {name!r} twice")
                placement[name] = device_index
        missing = set(self.group_names) - set(placement)
        if missing:
            raise LayoutError(f"solution leaves {sorted(missing)} unplaced")
        return placement

    def objective_value(self, values: List[int]) -> float:
        """Objective of a 0/1 assignment vector."""
        return sum(coef * values[i] for i, coef in self.objective.items())


def build_ilp(graph: LayoutGraph,
              objective: Optional[Dict[Tuple[str, int], float]] = None,
              capacity_rows: Optional[List[Tuple[Dict[Tuple[str, int], float],
                                                 str, float, str]]] = None
              ) -> IlpProblem:
    """Translate a layout graph into an :class:`IlpProblem`.

    ``objective`` maps (node name, device index) -> coefficient; missing
    pairs contribute zero.  ``capacity_rows`` are objective-supplied
    extra rows, each ``(coeffs keyed by (name, k), sense, rhs, label)`` —
    the bus capability matrix of the Maximize-Bus-Usage objective arrives
    this way.  Infeasibility that is detectable at build time (a Pull
    edge with no shared compatible device) raises
    :class:`InfeasibleLayoutError` immediately.
    """
    var_names: List[str] = []
    var_meta: List[Tuple[str, int]] = []
    groups: List[List[int]] = []
    group_names: List[str] = []
    index_of: Dict[Tuple[str, int], int] = {}

    for name, node in graph.nodes.items():
        group: List[int] = []
        for k in node.compatible_indices():
            index = len(var_names)
            var_names.append(f"{name}@{graph.devices[k]}")
            var_meta.append((name, k))
            index_of[(name, k)] = index
            group.append(index)
        groups.append(group)
        group_names.append(name)

    constraints: List[LinearConstraint] = []

    for c in graph.constraints:
        src = graph.node(c.source)
        dst = graph.node(c.target)
        if c.kind is ConstraintType.PULL:
            shared = set(src.compatible_indices()) & set(
                dst.compatible_indices())
            if not shared:
                raise InfeasibleLayoutError(
                    f"Pull({c.source},{c.target}): no shared compatible "
                    "device")
            # Eq. 2: X^k_src == X^k_dst for every device k.
            for k in range(graph.num_devices):
                coeffs = []
                if (c.source, k) in index_of:
                    coeffs.append((index_of[(c.source, k)], 1.0))
                if (c.target, k) in index_of:
                    coeffs.append((index_of[(c.target, k)], -1.0))
                if coeffs:
                    constraints.append(LinearConstraint(
                        coeffs=tuple(coeffs), sense=EQ, rhs=0.0,
                        label=f"pull[{c.source},{c.target}]@"
                              f"{graph.devices[k]}"))
        elif c.kind is ConstraintType.GANG:
            # Eq. 3: offload sums equal (k >= 1).
            coeffs = (
                [(index_of[(c.source, k)], 1.0)
                 for k in src.compatible_indices() if k != HOST_INDEX]
                + [(index_of[(c.target, k)], -1.0)
                   for k in dst.compatible_indices() if k != HOST_INDEX])
            constraints.append(LinearConstraint(
                coeffs=tuple(coeffs), sense=EQ, rhs=0.0,
                label=f"gang[{c.source},{c.target}]"))
        elif c.kind is ConstraintType.GANG_ASYM:
            # Eq. 4 for edge a -> b: offload(a) <= offload(b).
            coeffs = (
                [(index_of[(c.source, k)], 1.0)
                 for k in src.compatible_indices() if k != HOST_INDEX]
                + [(index_of[(c.target, k)], -1.0)
                   for k in dst.compatible_indices() if k != HOST_INDEX])
            constraints.append(LinearConstraint(
                coeffs=tuple(coeffs), sense=LE, rhs=0.0,
                label=f"gangasym[{c.source}->{c.target}]"))
        # LINK edges add no equations (Section 3.3: "poses no constraints").

    for row_coeffs, sense, rhs, label in (capacity_rows or []):
        coeffs = tuple((index_of[key], coefficient)
                       for key, coefficient in row_coeffs.items()
                       if key in index_of and coefficient)
        if coeffs:
            constraints.append(LinearConstraint(
                coeffs=coeffs, sense=sense, rhs=rhs, label=label))

    objective_map: Dict[int, float] = {}
    if objective:
        for (name, k), coefficient in objective.items():
            index = index_of.get((name, k))
            if index is not None and coefficient:
                objective_map[index] = coefficient

    return IlpProblem(var_names=var_names, groups=groups,
                      group_names=group_names, constraints=constraints,
                      objective=objective_map, var_meta=var_meta,
                      devices=graph.devices)
