"""Target optimization functions for the layout ILP (Section 5.1.3).

The paper presents two and notes "the list is by no means complete;
additional objective functions can be easily added":

1. **Maximized Offloading** — "offload as many Offcodes as possible ...
   to minimize the CPU usage and memory contention at the host":
   maximize sum of X^k_n over k >= 1.
2. **Maximize Bus Usage** — each Offcode carries a *price* (its expected
   bus bandwidth demand); the objective maximizes the total price of
   offloaded Offcodes subject to a per-link *capability matrix* that
   caps how much bandwidth each device's bus attachment can carry.

We add a third useful one, **MinimizeHostCpu**, weighting each Offcode
by an estimated host CPU relief — an instance of the paper's "additional
objective functions can be easily added".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.errors import LayoutError
from repro.core.layout.graph import HOST_INDEX, LayoutGraph
from repro.core.layout.ilp import IlpProblem, LE, build_ilp

__all__ = ["Objective", "MaximizeOffloading", "MaximizeBusUsage",
           "MinimizeHostCpu", "BusCapabilityMatrix"]


class Objective:
    """An objective knows how to turn a graph into an IlpProblem."""

    name: str = "abstract"

    def build(self, graph: LayoutGraph) -> IlpProblem:
        """Translate ``graph`` into an :class:`IlpProblem` for this objective."""
        raise NotImplementedError


class MaximizeOffloading(Objective):
    """Objective 1: every offloaded Offcode is worth one point."""

    name = "maximize-offloading"

    def build(self, graph: LayoutGraph) -> IlpProblem:
        """Coefficient 1 for every offloaded placement variable."""
        objective: Dict[Tuple[str, int], float] = {}
        for name, node in graph.nodes.items():
            for k in node.compatible_indices():
                if k != HOST_INDEX:
                    objective[(name, k)] = 1.0
        return build_ilp(graph, objective=objective)


@dataclass
class BusCapabilityMatrix:
    """"The maximal bus bandwidth between every pair of peripheral
    devices" (Section 5.1.3), in the same arbitrary units as node prices.

    ``limits[(a, b)]`` caps traffic between endpoints a and b; a device's
    *attachment budget* — the binding constraint for placement — is the
    sum of its rows (everything it can exchange with all peers).
    """

    devices: Tuple[str, ...]
    limits: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def set_limit(self, a: str, b: str, bandwidth: float) -> None:
        """Cap the bandwidth between a device pair (symmetric)."""
        if a not in self.devices or b not in self.devices:
            raise LayoutError(f"unknown device in pair ({a!r}, {b!r})")
        if bandwidth < 0:
            raise LayoutError("bandwidth limit must be non-negative")
        self.limits[(a, b)] = bandwidth
        self.limits[(b, a)] = bandwidth

    def attachment_budget(self, device: str) -> float:
        """Sum of a device's pairwise limits (inf when unconstrained)."""
        if device not in self.devices:
            raise LayoutError(f"unknown device {device!r}")
        total = sum(bw for (a, _b), bw in self.limits.items() if a == device)
        return total if total > 0 else float("inf")

    @staticmethod
    def uniform(devices: Tuple[str, ...], bandwidth: float
                ) -> "BusCapabilityMatrix":
        """Every device pair capped at the same bandwidth."""
        matrix = BusCapabilityMatrix(devices=devices)
        peripherals = [d for d in devices if d != devices[HOST_INDEX]]
        for i, a in enumerate(peripherals):
            for b in peripherals[i + 1:]:
                matrix.set_limit(a, b, bandwidth)
        return matrix


class MaximizeBusUsage(Objective):
    """Objective 2: maximize offloaded bandwidth under bus capabilities."""

    name = "maximize-bus-usage"

    def __init__(self, capability: BusCapabilityMatrix) -> None:
        self.capability = capability

    def build(self, graph: LayoutGraph) -> IlpProblem:
        """Price-weighted objective plus per-device capability rows."""
        if tuple(self.capability.devices) != tuple(graph.devices):
            raise LayoutError(
                "capability matrix device list does not match the graph")
        objective: Dict[Tuple[str, int], float] = {}
        for name, node in graph.nodes.items():
            for k in node.compatible_indices():
                if k != HOST_INDEX:
                    objective[(name, k)] = node.price
        rows = []
        for k, device in enumerate(graph.devices):
            if k == HOST_INDEX:
                continue
            budget = self.capability.attachment_budget(device)
            if budget == float("inf"):
                continue
            coeffs = {
                (name, k): node.price
                for name, node in graph.nodes.items()
                if node.compat[k] and node.price
            }
            if coeffs:
                rows.append((coeffs, LE, budget, f"buscap[{device}]"))
        return build_ilp(graph, objective=objective, capacity_rows=rows)


class MinimizeHostCpu(Objective):
    """Extension objective: weight Offcodes by host-CPU relief."""

    name = "minimize-host-cpu"

    def __init__(self, cpu_relief: Mapping[str, float]) -> None:
        """``cpu_relief[name]`` estimates the host CPU fraction freed by
        offloading that Offcode (from profiling or the ODF author)."""
        self.cpu_relief = dict(cpu_relief)

    def build(self, graph: LayoutGraph) -> IlpProblem:
        """CPU-relief-weighted offload objective."""
        objective: Dict[Tuple[str, int], float] = {}
        for name, node in graph.nodes.items():
            relief = self.cpu_relief.get(name, 0.0)
            if relief < 0:
                raise LayoutError(f"{name}: negative CPU relief")
            for k in node.compatible_indices():
                if k != HOST_INDEX:
                    objective[(name, k)] = relief
        return build_ilp(graph, objective=objective)
