"""Traffic-aware placement: minimize bus crossings (Section 6.3, automated).

The paper chooses the TiVoPC layout by hand-reasoning about bus
crossings: "Since we do not want packets to traverse the bus twice, a
Gang constraint is imposed"; "requiring a Gang constraint between the
two Offcodes will minimize the number of bus crossing operations"; the
Decoder goes to the GPU partly because decoded frames are ~20x larger
than the stream, so the decode must happen *at* the display.

This module automates that reasoning.  The cost of a placement is

    sum over data-flow edges (m, n):  traffic(m, n) * crossings(m, n)

where ``crossings`` depends on where both endpoints sit — zero when
co-located, one bus transaction between host and a device or between
peers on a peer-to-peer bus, two when a legacy bus stages
device-to-device traffic through host memory.  The objective is
*quadratic* in the placement variables (it prices pairs), so it does not
fit the linear Section-5 formulation; :class:`MinimizeBusCrossings`
ships with its own exact branch-and-bound over the layout graph,
honouring the same Pull/Gang/GangAsym constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import InfeasibleLayoutError, LayoutError, SolverError
from repro.core.layout.constraints import ConstraintType
from repro.core.layout.graph import HOST_INDEX, LayoutGraph
from repro.core.layout.solver import SolveResult

__all__ = ["TrafficMatrix", "crossing_cost", "MinimizeBusCrossings"]


@dataclass
class TrafficMatrix:
    """Expected data-flow volume between Offcode pairs.

    Units are arbitrary (relative traffic weights); direction matters
    only for bookkeeping — a flow is priced by where its two endpoints
    sit, whichever way the bytes move.
    """

    flows: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def set_flow(self, source: str, target: str, volume: float) -> None:
        """Declare ``volume`` units of traffic between two Offcodes."""
        if volume < 0:
            raise LayoutError(f"negative traffic volume: {volume}")
        if source == target:
            raise LayoutError(f"flow from {source!r} to itself")
        self.flows[(source, target)] = volume

    def edges(self) -> List[Tuple[str, str, float]]:
        """All declared flows as (source, target, volume) triples."""
        return [(s, t, v) for (s, t), v in self.flows.items() if v > 0]


def crossing_cost(src_device: int, dst_device: int,
                  peer_to_peer: bool = True) -> int:
    """Bus transactions one payload needs between two placements.

    Index 0 is the host.  Co-located endpoints cost zero; host<->device
    and device<->device on a peer-to-peer bus cost one; device<->device
    on a legacy bus stages through host memory and costs two.
    """
    if src_device == dst_device:
        return 0
    if HOST_INDEX in (src_device, dst_device):
        return 1
    return 1 if peer_to_peer else 2


class MinimizeBusCrossings:
    """Exact traffic-weighted placement under layout constraints.

    Not an :class:`~repro.core.layout.objectives.Objective` (the cost is
    quadratic); call :meth:`solve` directly with the graph and a
    :class:`TrafficMatrix`.  Ties are broken toward *more offloaded*
    placements, matching the paper's secondary goal of relieving the
    host.
    """

    name = "minimize-bus-crossings"

    def __init__(self, traffic: TrafficMatrix, peer_to_peer: bool = True,
                 max_nodes: int = 2_000_000) -> None:
        self.traffic = traffic
        self.peer_to_peer = peer_to_peer
        self.max_nodes = max_nodes

    def solve(self, graph: LayoutGraph) -> SolveResult:
        """Minimum-crossing placement (InfeasibleLayoutError if none)."""
        for source, target, _volume in self.traffic.edges():
            for name in (source, target):
                if name not in graph.nodes:
                    raise LayoutError(
                        f"traffic references unknown Offcode {name!r}")

        names = list(graph.nodes)
        index_of = {name: i for i, name in enumerate(names)}
        options = [graph.nodes[name].compatible_indices()
                   for name in names]
        # Flows between nodes, by index, with volumes.
        flows = [(index_of[s], index_of[t], v)
                 for s, t, v in self.traffic.edges()]
        # Constraints, by index.
        constraints = [(index_of[c.source], index_of[c.target], c.kind)
                       for c in graph.constraints
                       if c.kind is not ConstraintType.LINK]
        # Most-constrained-first ordering.
        order = sorted(range(len(names)), key=lambda i: len(options[i]))

        placement: List[Optional[int]] = [None] * len(names)
        best: Dict[str, object] = {"cost": None, "offloaded": -1,
                                   "placement": None}
        explored = [0]
        p2p = self.peer_to_peer

        def partial_ok(i: int) -> bool:
            for a, b, kind in constraints:
                if i not in (a, b):
                    continue
                pa, pb = placement[a], placement[b]
                if pa is None or pb is None:
                    continue
                if kind is ConstraintType.PULL and pa != pb:
                    return False
                if kind is ConstraintType.GANG and (
                        (pa != HOST_INDEX) != (pb != HOST_INDEX)):
                    return False
                if kind is ConstraintType.GANG_ASYM and (
                        pa != HOST_INDEX and pb == HOST_INDEX):
                    return False
            return True

        def added_cost(i: int) -> float:
            total = 0.0
            for a, b, volume in flows:
                if i not in (a, b):
                    continue
                other = b if i == a else a
                po = placement[other]
                if po is None:
                    continue
                total += volume * crossing_cost(placement[i], po, p2p)
            return total

        def dfs(position: int, cost: float, offloaded: int) -> None:
            explored[0] += 1
            if explored[0] > self.max_nodes:
                raise SolverError(
                    f"crossing minimizer exceeded {self.max_nodes} nodes")
            if best["cost"] is not None and cost > best["cost"]:
                return     # remaining edges can only add cost
            if position == len(names):
                better = (best["cost"] is None or cost < best["cost"]
                          or (cost == best["cost"]
                              and offloaded > best["offloaded"]))
                if better:
                    best["cost"] = cost
                    best["offloaded"] = offloaded
                    best["placement"] = list(placement)
                return
            i = order[position]
            for device in options[i]:
                placement[i] = device
                if partial_ok(i):
                    dfs(position + 1, cost + added_cost(i),
                        offloaded + (device != HOST_INDEX))
                placement[i] = None

        dfs(0, 0.0, 0)
        if best["placement"] is None:
            raise InfeasibleLayoutError(
                "no placement satisfies the layout constraints")
        result_placement = {names[i]: device
                            for i, device in enumerate(best["placement"])}
        violations = graph.check_placement(result_placement)
        if violations:
            raise LayoutError(f"internal error: {violations}")
        return SolveResult(placement=result_placement,
                           objective=-float(best["cost"]),
                           solver=self.name, optimal=True,
                           nodes_explored=explored[0])

    def cost_of(self, graph: LayoutGraph,
                placement: Dict[str, int]) -> float:
        """Traffic-weighted crossing cost of a given placement."""
        total = 0.0
        for source, target, volume in self.traffic.edges():
            total += volume * crossing_cost(
                placement[source], placement[target], self.peer_to_peer)
        return total
