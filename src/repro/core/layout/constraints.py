"""Channel constraints between Offcodes (Section 3.3).

Four constraint kinds relate a source Offcode *a* to a target *b*:

* ``LINK`` — the default; "poses no constraints: a and b may or may not
  be mutually offloaded", it only records that one needs the other.
* ``PULL`` — "both Offcodes will be offloaded to the same target
  device" (Eq. 2: same placement vector).
* ``GANG`` — "if a is offloaded, b will be too, albeit on perhaps a
  different device" — and symmetrically (Eq. 3: equal offload sums).
* ``GANG_ASYM`` — "offloading b doesn't imply offloading a"
  (Eq. 4: offload(a) <= offload(b) for the edge a -> b).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import LayoutError

__all__ = ["ConstraintType", "Constraint", "parse_constraint_type"]


class ConstraintType(Enum):
    LINK = "Link"
    PULL = "Pull"
    GANG = "Gang"
    GANG_ASYM = "GangAsym"

    @property
    def symmetric(self) -> bool:
        """False only for the asymmetric Gang."""
        return self is not ConstraintType.GANG_ASYM


_ALIASES = {
    "link": ConstraintType.LINK,
    "pull": ConstraintType.PULL,
    "gang": ConstraintType.GANG,
    "gangasym": ConstraintType.GANG_ASYM,
    "gang-asym": ConstraintType.GANG_ASYM,
    "asymmetricgang": ConstraintType.GANG_ASYM,
    "asymmetric-gang": ConstraintType.GANG_ASYM,
}


def parse_constraint_type(text: str) -> ConstraintType:
    """Parse an ODF ``reference type=`` value, case-insensitively."""
    try:
        return _ALIASES[text.strip().lower()]
    except KeyError:
        raise LayoutError(
            f"unknown constraint type {text!r}; "
            f"expected one of {sorted(set(_ALIASES))}") from None


@dataclass(frozen=True)
class Constraint:
    """A directed constraint edge ``source -> target`` in the layout graph.

    ``priority`` mirrors the ODF ``pri=`` attribute: when the resolver
    must relax constraints to restore feasibility, lower-priority edges
    are dropped first (0 = highest priority, never dropped).
    """

    source: str
    target: str
    kind: ConstraintType
    priority: int = 0

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise LayoutError(
                f"constraint from {self.source!r} to itself")
        if self.priority < 0:
            raise LayoutError(f"negative constraint priority: {self.priority}")
