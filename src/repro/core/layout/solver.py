"""ILP solvers for the offloading layout problem.

"Any ILP solver can then be used to solve the equations given a target
optimization function" (Section 5).  Two complete solvers and one
baseline are provided:

* :class:`BranchAndBoundSolver` — exact, from scratch: depth-first
  search over the per-Offcode placement groups with interval-based
  constraint propagation and an optimistic objective bound.
* :class:`ScipyMilpSolver` — delegates to ``scipy.optimize.milp`` when
  SciPy is installed (the "any ILP solver" plug-in point).
* :class:`GreedySolver` — the baseline the paper argues against:
  "simple graphs are usually trivial to solve, while for complex
  scenarios a greedy solution is not always optimal".  It places
  Offcodes one at a time, locally maximizing the objective, and only
  respects constraints it can already see.

All solvers share the :class:`SolveResult` contract and raise
:class:`InfeasibleLayoutError` when no assignment satisfies Eqs. 1-4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import InfeasibleLayoutError, SolverError
from repro.core.layout.graph import HOST_INDEX
from repro.core.layout.ilp import EQ, IlpProblem, LE

__all__ = ["SolveResult", "BranchAndBoundSolver", "ScipyMilpSolver",
           "GreedySolver", "default_solver"]


@dataclass
class SolveResult:
    """A placement plus how it was obtained."""

    placement: Dict[str, int]      # node name -> device index
    objective: float
    solver: str
    optimal: bool
    nodes_explored: int = 0

    def offloaded(self) -> List[str]:
        """Names of Offcodes placed off the host."""
        return [name for name, k in self.placement.items()
                if k != HOST_INDEX]


class _ProblemView:
    """Precomputed per-group/per-constraint tables shared by solvers."""

    def __init__(self, problem: IlpProblem) -> None:
        self.problem = problem
        self.num_groups = len(problem.groups)
        # Per variable: objective coefficient.
        self.obj = [problem.objective.get(i, 0.0)
                    for i in range(problem.num_vars)]
        # Per group: best possible objective contribution.
        self.group_best = [max((self.obj[v] for v in group), default=0.0)
                           for group in problem.groups]
        # Variable -> owning group.
        self.group_of = [0] * problem.num_vars
        for g, group in enumerate(problem.groups):
            for v in group:
                self.group_of[v] = g
        # Per constraint: coefficient lookup, involved groups, and the
        # min/max contribution each involved group can make.
        self.rows: List[Dict[int, float]] = []
        self.row_groups: List[List[int]] = []
        self.row_minmax: List[Dict[int, Tuple[float, float]]] = []
        for constraint in problem.constraints:
            row = dict(constraint.coeffs)
            involved = sorted({self.group_of[v] for v in row})
            minmax: Dict[int, Tuple[float, float]] = {}
            for g in involved:
                contributions = [row.get(v, 0.0) for v in problem.groups[g]]
                minmax[g] = (min(contributions), max(contributions))
            self.rows.append(row)
            self.row_groups.append(involved)
            self.row_minmax.append(minmax)


class BranchAndBoundSolver:
    """Exact DFS with interval propagation and objective bounding."""

    name = "branch-and-bound"

    def __init__(self, max_nodes: int = 2_000_000) -> None:
        self.max_nodes = max_nodes

    def solve(self, problem: IlpProblem) -> SolveResult:
        """Exact optimum via DFS with pruning (InfeasibleLayoutError if none)."""
        view = _ProblemView(problem)
        constraints = problem.constraints
        # Most-constrained-first group ordering shrinks the search tree.
        order = sorted(range(view.num_groups),
                       key=lambda g: len(problem.groups[g]))
        chosen: List[Optional[int]] = [None] * view.num_groups
        # Running partial sums per constraint row.
        partial = [0.0] * len(constraints)
        # How many involved groups of each row remain unassigned.
        remaining_minmax = [
            [sum(mm[g][0] for g in groups), sum(mm[g][1] for g in groups)]
            for groups, mm in zip(view.row_groups, view.row_minmax)
        ]
        best: Dict[str, object] = {"value": None, "chosen": None}
        explored = [0]

        # Optimistic objective bound of the still-unassigned suffix.
        suffix_best = [0.0] * (view.num_groups + 1)
        for position in range(view.num_groups - 1, -1, -1):
            suffix_best[position] = (suffix_best[position + 1]
                                     + view.group_best[order[position]])

        def feasible_interval(row_index: int) -> bool:
            constraint = constraints[row_index]
            low = partial[row_index] + remaining_minmax[row_index][0]
            high = partial[row_index] + remaining_minmax[row_index][1]
            if constraint.sense == EQ:
                return low <= constraint.rhs <= high
            return low <= constraint.rhs

        def dfs(position: int, objective_so_far: float) -> None:
            explored[0] += 1
            if explored[0] > self.max_nodes:
                raise SolverError(
                    f"branch-and-bound exceeded {self.max_nodes} nodes")
            if best["value"] is not None and (
                    objective_so_far + suffix_best[position]
                    <= best["value"] + 1e-12):
                # Cannot strictly improve; keep the first optimum found.
                return
            if position == view.num_groups:
                best["value"] = objective_so_far
                best["chosen"] = list(chosen)
                return
            g = order[position]
            variables = sorted(problem.groups[g],
                               key=lambda v: -view.obj[v])
            for v in variables:
                # Apply: update row partials and remaining intervals.
                touched: List[int] = []
                ok = True
                for row_index, row in enumerate(view.rows):
                    if g in view.row_minmax[row_index]:
                        low, high = view.row_minmax[row_index][g]
                        partial[row_index] += row.get(v, 0.0)
                        remaining_minmax[row_index][0] -= low
                        remaining_minmax[row_index][1] -= high
                        touched.append(row_index)
                        if ok and not feasible_interval(row_index):
                            ok = False
                chosen[g] = v
                if ok:
                    dfs(position + 1, objective_so_far + view.obj[v])
                chosen[g] = None
                for row_index in touched:
                    low, high = view.row_minmax[row_index][g]
                    partial[row_index] -= view.rows[row_index].get(v, 0.0)
                    remaining_minmax[row_index][0] += low
                    remaining_minmax[row_index][1] += high

        dfs(0, 0.0)
        if best["chosen"] is None:
            raise InfeasibleLayoutError(
                "no placement satisfies the layout constraints")
        values = [0] * problem.num_vars
        for v in best["chosen"]:          # type: ignore[union-attr]
            values[v] = 1
        return SolveResult(
            placement=problem.assignment_to_placement(values),
            objective=float(best["value"]),   # type: ignore[arg-type]
            solver=self.name, optimal=True, nodes_explored=explored[0])


class ScipyMilpSolver:
    """Adapter to ``scipy.optimize.milp`` (if SciPy is available)."""

    name = "scipy-milp"

    @staticmethod
    def available() -> bool:
        try:
            from scipy.optimize import milp  # noqa: F401
            return True
        except ImportError:
            return False

    def solve(self, problem: IlpProblem) -> SolveResult:
        """Delegate to scipy.optimize.milp and translate the solution back."""
        try:
            import numpy as np
            from scipy.optimize import Bounds, LinearConstraint as SpLinear
            from scipy.optimize import milp
        except ImportError as exc:
            raise SolverError(f"SciPy not available: {exc}") from None

        n = problem.num_vars
        cost = np.zeros(n)
        for i, coefficient in problem.objective.items():
            cost[i] = -coefficient          # milp minimizes

        rows, lower, upper = [], [], []
        for group in problem.groups:        # Eq. 1
            row = np.zeros(n)
            row[group] = 1.0
            rows.append(row)
            lower.append(1.0)
            upper.append(1.0)
        for constraint in problem.constraints:
            row = np.zeros(n)
            for i, coefficient in constraint.coeffs:
                row[i] = coefficient
            rows.append(row)
            lower.append(constraint.rhs if constraint.sense == EQ
                         else -np.inf)
            upper.append(constraint.rhs)

        result = milp(
            c=cost,
            constraints=SpLinear(np.array(rows), np.array(lower),
                                 np.array(upper)),
            integrality=np.ones(n),
            bounds=Bounds(0, 1),
        )
        if not result.success:
            raise InfeasibleLayoutError(
                f"scipy.milp found no solution: {result.message}")
        values = [int(round(x)) for x in result.x]
        return SolveResult(
            placement=problem.assignment_to_placement(values),
            objective=problem.objective_value(values),
            solver=self.name, optimal=True)


class GreedySolver:
    """The paper's implied baseline: local, order-dependent placement."""

    name = "greedy"

    def solve(self, problem: IlpProblem) -> SolveResult:
        """Order-dependent local placement; may fail or be suboptimal."""
        view = _ProblemView(problem)
        chosen: List[Optional[int]] = [None] * view.num_groups
        values = [0] * problem.num_vars

        def determined_ok(candidate_group: int, candidate_var: int) -> bool:
            """Check rows whose involved groups are all now decided."""
            values[candidate_var] = 1
            try:
                for row_index, groups in enumerate(view.row_groups):
                    if candidate_group not in view.row_minmax[row_index]:
                        continue
                    if any(chosen[g] is None and g != candidate_group
                           for g in groups):
                        # Not fully determined; greedy checks only the
                        # pessimistic nonnegative-LE case.
                        constraint = problem.constraints[row_index]
                        if constraint.sense == LE and all(
                                c >= 0 for _i, c in constraint.coeffs):
                            if constraint.evaluate(values) > constraint.rhs:
                                return False
                        continue
                    if not problem.constraints[row_index].satisfied(values):
                        return False
                return True
            finally:
                values[candidate_var] = 0

        for g in range(view.num_groups):
            candidates = sorted(problem.groups[g],
                                key=lambda v: -view.obj[v])
            placed = False
            for v in candidates:
                if determined_ok(g, v):
                    chosen[g] = v
                    values[v] = 1
                    placed = True
                    break
            if not placed:
                raise InfeasibleLayoutError(
                    f"greedy could not place {problem.group_names[g]!r} "
                    "(a backtracking solver may still succeed)")
        return SolveResult(
            placement=problem.assignment_to_placement(values),
            objective=problem.objective_value(values),
            solver=self.name, optimal=False)


def default_solver():
    """SciPy's MILP when present, else the built-in branch and bound."""
    if ScipyMilpSolver.available():
        return ScipyMilpSolver()
    return BranchAndBoundSolver()
