"""The Offloading Layout Graph (Sections 3.3 and 5.1).

"The layout graph G = (V, E) includes the set of Offcodes as vertices,
and the channel constraints among them are the edges.  At deployment
time the runtime associates with each node n (Offcode) a compatibility
target vector C_n representing the potential target devices that can
host the Offcode.  Note that the host CPUs are included in the list of
devices" — by convention, like the paper's, **index 0 is the host**.

Each node also carries a *price*: "the estimated average bus bandwidth
that is required by the specific Offcode", used by the Maximize-Bus-Usage
objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import LayoutError
from repro.core.layout.constraints import Constraint, ConstraintType

__all__ = ["LayoutNode", "LayoutGraph", "HOST_INDEX"]

HOST_INDEX = 0


@dataclass
class LayoutNode:
    """One Offcode vertex: name, compatibility vector, bandwidth price."""

    name: str
    compat: Tuple[bool, ...]       # C_n; index 0 is the host CPU
    price: float = 0.0             # avg bus bandwidth demand (arbitrary units)

    def __post_init__(self) -> None:
        if not self.name:
            raise LayoutError("layout node needs a name")
        if not any(self.compat):
            raise LayoutError(
                f"offcode {self.name!r} is compatible with no device "
                "(and not host-capable)")
        if self.price < 0:
            raise LayoutError(f"{self.name}: negative price")

    @property
    def host_capable(self) -> bool:
        """True when the host CPU (index 0) is a permitted target."""
        return self.compat[HOST_INDEX]

    def compatible_indices(self) -> List[int]:
        """Device indices where C^k_n = 1."""
        return [k for k, ok in enumerate(self.compat) if ok]


class LayoutGraph:
    """Offcodes + constraint edges over a fixed device list."""

    def __init__(self, devices: Sequence[str]) -> None:
        """``devices[0]`` must be the host; the rest are peripherals."""
        if not devices:
            raise LayoutError("layout graph needs at least the host device")
        if len(set(devices)) != len(devices):
            raise LayoutError(f"duplicate device names: {list(devices)}")
        self.devices: Tuple[str, ...] = tuple(devices)
        self.nodes: Dict[str, LayoutNode] = {}
        self.constraints: List[Constraint] = []

    # -- construction -----------------------------------------------------------

    @property
    def num_devices(self) -> int:
        """K: number of targets including the host."""
        return len(self.devices)

    @property
    def num_nodes(self) -> int:
        """N: number of Offcode vertices."""
        return len(self.nodes)

    def add_node(self, name: str, compat: Sequence[bool],
                 price: float = 0.0) -> LayoutNode:
        """Add an Offcode vertex with its compatibility vector and price."""
        if name in self.nodes:
            raise LayoutError(f"duplicate layout node {name!r}")
        if len(compat) != self.num_devices:
            raise LayoutError(
                f"{name}: compat vector has {len(compat)} entries, "
                f"graph has {self.num_devices} devices")
        node = LayoutNode(name=name, compat=tuple(bool(c) for c in compat),
                          price=price)
        self.nodes[name] = node
        return node

    def add_constraint(self, constraint: Constraint) -> Constraint:
        """Add a constraint edge (endpoints must already exist)."""
        for endpoint in (constraint.source, constraint.target):
            if endpoint not in self.nodes:
                raise LayoutError(
                    f"constraint references unknown node {endpoint!r}")
        self.constraints.append(constraint)
        return constraint

    def constrain(self, source: str, target: str, kind: ConstraintType,
                  priority: int = 0) -> Constraint:
        """Convenience wrapper building and adding a :class:`Constraint`."""
        return self.add_constraint(Constraint(
            source=source, target=target, kind=kind, priority=priority))

    # -- queries ------------------------------------------------------------------

    def node(self, name: str) -> LayoutNode:
        """Vertex by name (LayoutError if absent)."""
        try:
            return self.nodes[name]
        except KeyError:
            raise LayoutError(f"no layout node {name!r}") from None

    def device_index(self, device: str) -> int:
        """Index of ``device`` in the device tuple."""
        try:
            return self.devices.index(device)
        except ValueError:
            raise LayoutError(f"no device {device!r} in layout") from None

    def edges_of_kind(self, kind: ConstraintType) -> List[Constraint]:
        """All constraint edges of one kind."""
        return [c for c in self.constraints if c.kind == kind]

    def without_constraints_below(self, priority: int) -> "LayoutGraph":
        """Copy of the graph keeping only edges with pri < ``priority``.

        Relaxation order for infeasible layouts: the ODF ``pri``
        attribute makes low-priority references droppable.
        """
        relaxed = LayoutGraph(self.devices)
        for node in self.nodes.values():
            relaxed.add_node(node.name, node.compat, node.price)
        for constraint in self.constraints:
            if constraint.priority < priority:
                relaxed.add_constraint(constraint)
        return relaxed

    # -- placement validation --------------------------------------------------------

    def check_placement(self, placement: Dict[str, int]) -> List[str]:
        """Verify an assignment node -> device index; returns violations.

        An empty list means the placement satisfies Eq. 1 (unique, valid
        placement) and every constraint edge (Eqs. 2-4).
        """
        problems: List[str] = []
        for name, node in self.nodes.items():
            if name not in placement:
                problems.append(f"{name}: not placed")
                continue
            k = placement[name]
            if not 0 <= k < self.num_devices:
                problems.append(f"{name}: device index {k} out of range")
            elif not node.compat[k]:
                problems.append(
                    f"{name}: placed on incompatible {self.devices[k]}")
        for c in self.constraints:
            if c.source not in placement or c.target not in placement:
                continue
            src_k, dst_k = placement[c.source], placement[c.target]
            src_off = src_k != HOST_INDEX
            dst_off = dst_k != HOST_INDEX
            if c.kind is ConstraintType.PULL and src_k != dst_k:
                problems.append(
                    f"Pull({c.source},{c.target}): placed on "
                    f"{self.devices[src_k]} vs {self.devices[dst_k]}")
            elif c.kind is ConstraintType.GANG and src_off != dst_off:
                problems.append(
                    f"Gang({c.source},{c.target}): offloaded={src_off} "
                    f"vs {dst_off}")
            elif (c.kind is ConstraintType.GANG_ASYM
                  and src_off and not dst_off):
                problems.append(
                    f"GangAsym({c.source}->{c.target}): source offloaded "
                    "but target on host")
        return problems
