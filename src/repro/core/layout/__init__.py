"""Offloading layout machinery: graph, constraints, ILP, solvers."""

from repro.core.layout.constraints import (
    Constraint,
    ConstraintType,
    parse_constraint_type,
)
from repro.core.layout.graph import HOST_INDEX, LayoutGraph, LayoutNode
from repro.core.layout.ilp import (
    EQ,
    IlpProblem,
    LE,
    LinearConstraint,
    build_ilp,
)
from repro.core.layout.objectives import (
    BusCapabilityMatrix,
    MaximizeBusUsage,
    MaximizeOffloading,
    MinimizeHostCpu,
    Objective,
)
from repro.core.layout.quadratic import (
    MinimizeBusCrossings,
    TrafficMatrix,
    crossing_cost,
)
from repro.core.layout.resolver import OffloadLayoutResolver, ResolvedLayout
from repro.core.layout.solver import (
    BranchAndBoundSolver,
    GreedySolver,
    ScipyMilpSolver,
    SolveResult,
    default_solver,
)

__all__ = [
    "BranchAndBoundSolver",
    "BusCapabilityMatrix",
    "Constraint",
    "ConstraintType",
    "EQ",
    "GreedySolver",
    "HOST_INDEX",
    "IlpProblem",
    "LE",
    "LayoutGraph",
    "LayoutNode",
    "LinearConstraint",
    "MaximizeBusUsage",
    "MaximizeOffloading",
    "MinimizeBusCrossings",
    "MinimizeHostCpu",
    "TrafficMatrix",
    "crossing_cost",
    "Objective",
    "OffloadLayoutResolver",
    "ResolvedLayout",
    "ScipyMilpSolver",
    "SolveResult",
    "build_ilp",
    "default_solver",
    "parse_constraint_type",
]
