"""Memory-management services of the HYDRA runtime.

"The Memory Management module exports memory services such as user
memory pinning that is used by zero-copy channels" (Section 4).
Pinning makes user pages DMA-safe; it costs host CPU time per page
(get_user_pages-style walk) and is reference counted, so repeated pins
of a hot buffer are cheap — exactly why long-lived zero-copy channels
amortise well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Tuple

from repro.errors import ResourceError
from repro.hw.machine import Machine
from repro.sim.engine import Event

__all__ = ["PinnedRegion", "MemoryManager"]

PAGE_BYTES = 4096
PIN_COST_PER_PAGE_NS = 600


@dataclass
class PinnedRegion:
    """A pinned run of user pages."""

    base: int
    size: int
    refcount: int = 1

    @property
    def pages(self) -> int:
        """Number of pages the region spans (partial pages count)."""
        first = self.base // PAGE_BYTES
        last = (self.base + self.size - 1) // PAGE_BYTES
        return last - first + 1


class MemoryManager:
    """Pin/unpin accounting for one host."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._pinned: Dict[Tuple[int, int], PinnedRegion] = {}
        self.pin_operations = 0
        self.pinned_bytes_peak = 0

    @property
    def pinned_bytes(self) -> int:
        """Bytes currently pinned across all regions."""
        return sum(r.size for r in self._pinned.values())

    def pin(self, base: int, size: int
            ) -> Generator[Event, None, PinnedRegion]:
        """Pin ``[base, base+size)``; re-pinning bumps the refcount."""
        if size <= 0:
            raise ResourceError(f"pin size must be positive: {size}")
        key = (base, size)
        region = self._pinned.get(key)
        if region is not None:
            region.refcount += 1
            return region
        region = PinnedRegion(base=base, size=size)
        yield from self.machine.cpu.execute(
            region.pages * PIN_COST_PER_PAGE_NS, context="kernel-pin")
        self._pinned[key] = region
        self.pin_operations += 1
        self.pinned_bytes_peak = max(self.pinned_bytes_peak,
                                     self.pinned_bytes)
        return region

    def unpin(self, region: PinnedRegion) -> None:
        """Drop one reference; the region unpins at refcount zero."""
        key = (region.base, region.size)
        stored = self._pinned.get(key)
        if stored is None or stored.refcount <= 0:
            raise ResourceError(
                f"unpin of region {region.base:#x}+{region.size} "
                "that is not pinned")
        stored.refcount -= 1
        if stored.refcount == 0:
            del self._pinned[key]
