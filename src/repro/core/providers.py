"""Channel providers — target-specific data paths with cost metrics.

"These providers are target-specific and will be provided as an extended
driver for each programmable device.  A channel provider is specialized
in creating various channel types to the device and provides a cost
metric regarding the 'price' for communicating with the device through a
specific channel, in terms of latency and throughput.  The executive
uses this capability information to decide on the best provider"
(Section 4).

Three provider families cover a host:

* :class:`LoopbackProvider` — endpoints co-located (host<->host or both
  on the same device): pointer handoff or memcpy.
* :class:`DmaChannelProvider` — host <-> one specific device, the
  Figure-6 architecture: descriptor rings, pinned buffers, bus-master
  DMA, optional copy-mode bounce buffers, completion interrupts.
* :class:`PeerDmaProvider` — device <-> device transfers that bypass
  host memory entirely on peer-to-peer buses (single transaction for
  hardware multicast).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro import units
from repro.errors import ProviderError
from repro.core.call import CallBatch
from repro.core.channel import Buffering, Channel, ChannelConfig, Endpoint
from repro.core.memory import MemoryManager
from repro.core.rings import Descriptor, DescriptorRing
from repro.core.sites import DeviceSite, ExecutionSite, HostSite
from repro.hw.device import ProgrammableDevice
from repro.hw.machine import Machine
from repro.sim.engine import Event

__all__ = ["CostMetric", "ChannelProvider", "LoopbackProvider",
           "DmaChannelProvider", "PeerDmaProvider"]

# Descriptor-handling firmware/driver costs.
_DESCRIPTOR_HOST_NS = 500
_DESCRIPTOR_DEVICE_NS = 900
_POINTER_HANDOFF_NS = 300
_LOCAL_COPY_NS_PER_BYTE = 0.9
# Per-entry cost of walking a chained scatter-gather descriptor list at
# the receiver (far cheaper than a full per-message descriptor cycle).
_BATCH_UNBUNDLE_NS = 120


@dataclass(frozen=True)
class CostMetric:
    """The provider's advertised price for one message."""

    latency_ns: int
    throughput_bps: float
    host_cpu_ns: int

    def score(self, size_hint: int) -> float:
        """Scalar rank used by the executive: end-to-end time for a
        message of ``size_hint`` bytes, with host CPU time double-weighted
        (host cycles are the resource offloading exists to protect)."""
        transfer = size_hint * 8 * units.SECOND / self.throughput_bps
        return self.latency_ns + transfer + 2 * self.host_cpu_ns


class ChannelProvider:
    """Interface all providers implement."""

    name: str = "abstract"

    def can_serve(self, src: ExecutionSite, dst: ExecutionSite,
                  config: ChannelConfig) -> bool:
        """Whether this provider reaches ``src`` -> ``dst`` under ``config``."""
        raise NotImplementedError

    def cost(self, src: ExecutionSite, dst: ExecutionSite,
             config: ChannelConfig) -> CostMetric:
        """Advertised per-message price (the executive ranks by this)."""
        raise NotImplementedError

    def transfer(self, channel: Channel, source: Endpoint,
                 destinations: List[Endpoint], size_bytes: int
                 ) -> Generator[Event, None, None]:
        """Process generator: move one message, charging all costs."""
        raise NotImplementedError

    def transfer_vectored(self, channel: Channel, source: Endpoint,
                          destinations: List[Endpoint], batch: CallBatch
                          ) -> Generator[Event, None, None]:
        """Move a whole batch; the base class falls back to a per-entry
        loop so providers without scatter-gather support stay correct
        (just without the single-transaction win)."""
        for size in batch.entry_sizes():
            yield from self.transfer(channel, source, destinations, size)

    def on_channel_created(self, channel: Channel) -> None:
        """Hook for per-channel resources (rings, shared memory)."""


class LoopbackProvider(ChannelProvider):
    """Same-location channels: host<->host or intra-device."""

    name = "loopback"

    def __init__(self, machine: Machine) -> None:
        self.machine = machine

    def _local(self, site: ExecutionSite) -> bool:
        if isinstance(site, HostSite):
            return site.machine is self.machine
        if isinstance(site, DeviceSite):
            return site.device.bus is self.machine.bus
        return False

    def can_serve(self, src: ExecutionSite, dst: ExecutionSite,
                  config: ChannelConfig) -> bool:
        """Co-located endpoints on this machine only."""
        return (src.name == dst.name
                and self._local(src) and self._local(dst))

    def cost(self, src: ExecutionSite, dst: ExecutionSite,
             config: ChannelConfig) -> CostMetric:
        """Pointer handoff (direct) or memcpy-rate (copy) pricing."""
        if config.buffering is Buffering.DIRECT:
            return CostMetric(latency_ns=_POINTER_HANDOFF_NS,
                              throughput_bps=64e9, host_cpu_ns=300)
        return CostMetric(latency_ns=2_000, throughput_bps=8e9,
                          host_cpu_ns=2_000)

    def transfer(self, channel: Channel, source: Endpoint,
                 destinations: List[Endpoint], size_bytes: int
                 ) -> Generator[Event, None, None]:
        """Pointer handoff, or a local copy through the L2 in copy mode."""
        site = source.site
        if channel.config.buffering is Buffering.DIRECT:
            yield from site.execute(_POINTER_HANDOFF_NS, context="channel")
            return
        cost = round(size_bytes * _LOCAL_COPY_NS_PER_BYTE) or 1
        if isinstance(site, HostSite):
            # A copying local channel streams through the L2 like memcpy.
            self.machine.l2.touch_range(0x3000_0000, size_bytes)
            self.machine.l2.touch_range(0x3400_0000, size_bytes, write=True)
        yield from site.execute(cost, context="channel")

    def transfer_vectored(self, channel: Channel, source: Endpoint,
                          destinations: List[Endpoint], batch: CallBatch
                          ) -> Generator[Event, None, None]:
        """One handoff (or one bulk copy) for the whole batch."""
        site = source.site
        if channel.config.buffering is Buffering.DIRECT:
            # A single pointer handoff publishes the chained list; each
            # receiver walks the per-entry descriptors.
            yield from site.execute(
                _POINTER_HANDOFF_NS + _BATCH_UNBUNDLE_NS * batch.count,
                context="channel")
            return
        total = batch.size_bytes
        cost = round(total * _LOCAL_COPY_NS_PER_BYTE) or 1
        if isinstance(site, HostSite):
            self.machine.l2.touch_range(0x3000_0000, total)
            self.machine.l2.touch_range(0x3400_0000, total, write=True)
        yield from site.execute(cost + _BATCH_UNBUNDLE_NS * batch.count,
                                context="channel")


class DmaChannelProvider(ChannelProvider):
    """Host <-> device channels over descriptor rings (Figure 6)."""

    def __init__(self, machine: Machine, device: ProgrammableDevice,
                 memory: MemoryManager, kernel=None) -> None:
        self.machine = machine
        self.device = device
        self.memory = memory
        self.kernel = kernel
        self.name = f"dma-{device.name}"
        self._pin_cursor = 0x6000_0000

    def can_serve(self, src: ExecutionSite, dst: ExecutionSite,
                  config: ChannelConfig) -> bool:
        """Exactly {host, this provider's device} on this machine."""
        sites = {src.name, dst.name}
        if sites != {"host", self.device.name}:
            return False
        host = src if isinstance(src, HostSite) else dst
        return isinstance(host, HostSite) and host.machine is self.machine

    def cost(self, src: ExecutionSite, dst: ExecutionSite,
             config: ChannelConfig) -> CostMetric:
        """Ring + DMA pricing; copy mode adds bounce-buffer CPU cost."""
        bus = self.device.bus
        base_latency = (bus.spec.arbitration_ns + _DESCRIPTOR_HOST_NS
                        + _DESCRIPTOR_DEVICE_NS)
        if config.buffering is Buffering.DIRECT:
            return CostMetric(latency_ns=base_latency,
                              throughput_bps=bus.spec.bandwidth_bps,
                              host_cpu_ns=_DESCRIPTOR_HOST_NS)
        return CostMetric(latency_ns=base_latency + 2_000,
                          throughput_bps=bus.spec.bandwidth_bps,
                          host_cpu_ns=5_000)

    def on_channel_created(self, channel: Channel) -> None:
        # The Figure-6 structures: an InRing of host call descriptors and
        # an OutRing of pre-posted descriptors for spontaneous messages.
        channel.in_ring = DescriptorRing(channel.config.ring_slots,
                                         name=f"in-{channel.channel_id}")
        channel.out_ring = DescriptorRing(channel.config.ring_slots,
                                          name=f"out-{channel.channel_id}")

    def transfer(self, channel: Channel, source: Endpoint,
                 destinations: List[Endpoint], size_bytes: int
                 ) -> Generator[Event, None, None]:
        """The Figure-6 path: pin/copy, descriptor, DMA, completion."""
        to_device = isinstance(source.site, HostSite)
        size = max(1, size_bytes)
        if to_device:
            yield from self._host_to_device(channel, source, size)
        else:
            yield from self._device_to_host(channel, source, size)

    def transfer_vectored(self, channel: Channel, source: Endpoint,
                          destinations: List[Endpoint], batch: CallBatch
                          ) -> Generator[Event, None, None]:
        """One descriptor + one scatter-gather DMA for the whole batch.

        The ring sees a *single* chained descriptor; the DMA engine
        gathers every entry in one bus transaction
        (:meth:`~repro.hw.device.ProgrammableDevice.dma_from_host_vectored`).
        Devices without the ``scatter-gather`` feature fall back to the
        per-entry loop.
        """
        if not self.device.supports_vectored_dma:
            yield from ChannelProvider.transfer_vectored(
                self, channel, source, destinations, batch)
            return
        sizes = batch.entry_sizes()
        to_device = isinstance(source.site, HostSite)
        if to_device:
            host = source.site
            if channel.config.buffering is Buffering.COPY:
                if self.kernel is not None:
                    yield from self.kernel.copy_from_user(
                        batch.size_bytes, context="channel")
                else:
                    yield from host.execute(
                        round(batch.size_bytes * _LOCAL_COPY_NS_PER_BYTE),
                        context="channel")
            else:
                region = yield from self.memory.pin(self._pin_cursor,
                                                    batch.size_bytes)
                del region
            yield from host.execute(_DESCRIPTOR_HOST_NS, context="channel")
            ring: DescriptorRing = channel.in_ring
            while not ring.post(Descriptor(address=self._pin_cursor,
                                           length=batch.size_bytes)):
                yield host.sim.timeout(2_000)
            yield from self.device.dma_from_host_vectored(sizes)
            ring.consume()
            yield from self.device.run_on_device(
                _DESCRIPTOR_DEVICE_NS + _BATCH_UNBUNDLE_NS * batch.count,
                context="channel")
        else:
            yield from self.device.run_on_device(_DESCRIPTOR_DEVICE_NS,
                                                 context="channel")
            ring = channel.out_ring
            while not ring.post(Descriptor(address=0,
                                           length=batch.size_bytes)):
                yield self.device.sim.timeout(2_000)
            yield from self.device.dma_to_host_vectored(sizes)
            ring.consume()
            # One completion interrupt covers the whole batch — interrupt
            # mitigation falls straight out of coalescing.
            if self.kernel is not None and channel.config.priority > 0:
                yield from self.kernel.isr()
            if channel.config.buffering is Buffering.COPY:
                if self.kernel is not None:
                    yield from self.kernel.copy_to_user(
                        batch.size_bytes, context="channel")
                else:
                    host = next((e.site for e in channel.endpoints
                                 if isinstance(e.site, HostSite)), None)
                    if host is not None:
                        yield from host.execute(
                            round(batch.size_bytes * _LOCAL_COPY_NS_PER_BYTE),
                            context="channel")

    def _host_to_device(self, channel: Channel, source: Endpoint,
                        size: int) -> Generator[Event, None, None]:
        host = source.site
        if channel.config.buffering is Buffering.COPY:
            if self.kernel is not None:
                yield from self.kernel.copy_from_user(size, context="channel")
            else:
                yield from host.execute(
                    round(size * _LOCAL_COPY_NS_PER_BYTE), context="channel")
        else:
            # Pin the user buffer (refcounted; hot buffers amortise).
            region = yield from self.memory.pin(self._pin_cursor, size)
            del region  # unpinned on channel close in a full teardown
        yield from host.execute(_DESCRIPTOR_HOST_NS, context="channel")
        ring: DescriptorRing = channel.in_ring
        while not ring.post(Descriptor(address=self._pin_cursor, length=size)):
            # Reliable semantics: wait for the device to drain a slot.
            yield host.sim.timeout(2_000)
        yield from self.device.dma_from_host(size)
        ring.consume()
        yield from self.device.run_on_device(_DESCRIPTOR_DEVICE_NS,
                                             context="channel")

    def _device_to_host(self, channel: Channel, source: Endpoint,
                        size: int) -> Generator[Event, None, None]:
        yield from self.device.run_on_device(_DESCRIPTOR_DEVICE_NS,
                                             context="channel")
        ring: DescriptorRing = channel.out_ring
        while not ring.post(Descriptor(address=0, length=size)):
            yield self.device.sim.timeout(2_000)
        yield from self.device.dma_to_host(size)
        ring.consume()
        # "optionally notifies the application using an event (usually
        # interrupt)" — high-priority channels interrupt, OOB ones poll.
        if self.kernel is not None and channel.config.priority > 0:
            yield from self.kernel.isr()
        if channel.config.buffering is Buffering.COPY:
            if self.kernel is not None:
                yield from self.kernel.copy_to_user(size, context="channel")
            else:
                host = next((e.site for e in channel.endpoints
                             if isinstance(e.site, HostSite)), None)
                if host is not None:
                    yield from host.execute(
                        round(size * _LOCAL_COPY_NS_PER_BYTE),
                        context="channel")


class PeerDmaProvider(ChannelProvider):
    """Device <-> device channels that bypass host memory."""

    name = "peer-dma"

    def __init__(self, machine: Machine) -> None:
        self.machine = machine

    @staticmethod
    def _device_of(site: ExecutionSite) -> Optional[ProgrammableDevice]:
        return site.device if isinstance(site, DeviceSite) else None

    def can_serve(self, src: ExecutionSite, dst: ExecutionSite,
                  config: ChannelConfig) -> bool:
        """Two distinct devices sharing one bus."""
        sdev, ddev = self._device_of(src), self._device_of(dst)
        return (sdev is not None and ddev is not None
                and sdev.name != ddev.name and sdev.bus is ddev.bus)

    def cost(self, src: ExecutionSite, dst: ExecutionSite,
             config: ChannelConfig) -> CostMetric:
        """Peer DMA pricing; doubles on non-peer-to-peer buses."""
        bus = self.machine.bus
        hops = 1 if bus.spec.peer_to_peer else 2
        return CostMetric(
            latency_ns=hops * bus.spec.arbitration_ns
            + 2 * _DESCRIPTOR_DEVICE_NS,
            throughput_bps=bus.spec.bandwidth_bps / hops,
            host_cpu_ns=0)

    def transfer(self, channel: Channel, source: Endpoint,
                 destinations: List[Endpoint], size_bytes: int
                 ) -> Generator[Event, None, None]:
        """Device-to-device DMA; hardware multicast when available."""
        src_dev = self._device_of(source.site)
        if src_dev is None:
            raise ProviderError("peer provider used from a host endpoint")
        size = max(1, size_bytes)
        yield from src_dev.run_on_device(_DESCRIPTOR_DEVICE_NS,
                                         context="channel")
        dst_names = []
        for destination in destinations:
            dst_dev = self._device_of(destination.site)
            if dst_dev is None:
                raise ProviderError("peer provider reached a host endpoint")
            dst_names.append(dst_dev.name)
        if len(dst_names) == 1:
            yield from src_dev.dma_to_peer(dst_names[0], size)
        elif src_dev.spec.has_feature("multicast-hw"):
            # "a multicast channel can utilize hardware features, if
            # available, to send a single request to multiple recipients"
            yield from src_dev.bus.multicast_transfer(
                src_dev.name, dst_names, size)
        else:
            for name in dst_names:
                yield from src_dev.dma_to_peer(name, size)
        for destination in destinations:
            yield from destination.site.execute(_DESCRIPTOR_DEVICE_NS,
                                                context="channel")

    def transfer_vectored(self, channel: Channel, source: Endpoint,
                          destinations: List[Endpoint], batch: CallBatch
                          ) -> Generator[Event, None, None]:
        """One peer scatter-gather transaction for the whole batch.

        Multicast batches combine the two hardware tricks: a single
        chained-descriptor transfer that every recipient snoops.
        """
        src_dev = self._device_of(source.site)
        if src_dev is None:
            raise ProviderError("peer provider used from a host endpoint")
        if not src_dev.supports_vectored_dma:
            yield from ChannelProvider.transfer_vectored(
                self, channel, source, destinations, batch)
            return
        sizes = batch.entry_sizes()
        yield from src_dev.run_on_device(_DESCRIPTOR_DEVICE_NS,
                                         context="channel")
        dst_names = []
        for destination in destinations:
            dst_dev = self._device_of(destination.site)
            if dst_dev is None:
                raise ProviderError("peer provider reached a host endpoint")
            dst_names.append(dst_dev.name)
        if len(dst_names) == 1:
            yield from src_dev.dma_to_peer_vectored(dst_names[0], sizes)
        elif src_dev.spec.has_feature("multicast-hw"):
            # The batch is already one contiguous chained list, so the
            # hardware-multicast transaction carries it whole.
            yield from src_dev.bus.multicast_transfer(
                src_dev.name, dst_names, batch.size_bytes)
            src_dev.bus.sg_transfers += 1
            src_dev.bus.sg_entries += len(sizes)
        else:
            for name in dst_names:
                yield from src_dev.dma_to_peer_vectored(name, sizes)
        for destination in destinations:
            yield from destination.site.execute(
                _DESCRIPTOR_DEVICE_NS + _BATCH_UNBUNDLE_NS * batch.count,
                context="channel")
