"""The Offcode Depot — the library of deployable Offcode instances.

"Typically, the runtime uses a local library that is used for storing
the actual instances (object files) of the Offcodes" (Section 3.4).  In
the reproduction an "instance" is a Python Offcode subclass registered
for a GUID, optionally restricted to specific device classes — the
vendor-supplied, per-target builds the paper envisions ("if a Display
Offcode for the local GPU is found, either locally or in the vendor's
Offcode library, it will be used at the GPU").

Lookup resolves (GUID, device class) to the most specific registration:
an exact device-class build wins over a portable (class-agnostic) one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Type, Union

from repro.errors import DepotError
from repro.core.checkpoint import CheckpointStore
from repro.core.guid import Guid
from repro.core.offcode import Offcode
from repro.hw.device import DeviceClass

__all__ = ["DepotEntry", "OffcodeDepot"]


@dataclass(frozen=True)
class DepotEntry:
    """One registered implementation."""

    guid: Guid
    implementation: Union[Type[Offcode], Callable]
    device_class: Optional[str] = None   # None = portable build
    vendor: Optional[str] = None

    def specificity(self) -> int:
        """Ranking key: device-class builds beat portable, vendor beats generic."""
        return (2 if self.device_class else 0) + (1 if self.vendor else 0)


class OffcodeDepot:
    """GUID -> implementation registry with device-class specialization."""

    def __init__(self) -> None:
        self._entries: Dict[Guid, List[DepotEntry]] = {}
        # Host-side checkpoint store: the depot is "the local library
        # used for storing the actual instances of the Offcodes"
        # (Section 3.4) — shipped state snapshots live next to the
        # builds they restore into.
        self.checkpoints = CheckpointStore()

    def register(self, guid: Guid,
                 implementation: Union[Type[Offcode], Callable],
                 device_class: Optional[str] = None,
                 vendor: Optional[str] = None) -> None:
        """Store an implementation for ``guid``.

        ``device_class`` restricts the build to one class of target;
        ``None`` registers a portable build usable anywhere (including
        the host fallback of Section 3.4).  ``implementation`` is an
        Offcode subclass or any factory callable ``f(site) -> Offcode``
        (vendors ship pre-configured builds as factories).
        """
        if isinstance(implementation, type):
            if not issubclass(implementation, Offcode):
                raise DepotError(
                    f"depot classes must be Offcode subclasses, "
                    f"got {implementation!r}")
        elif not callable(implementation):
            raise DepotError(
                f"depot entries must be Offcode subclasses or factories, "
                f"got {implementation!r}")
        if device_class is not None and device_class not in DeviceClass.ALL:
            raise DepotError(f"unknown device class {device_class!r}")
        entries = self._entries.setdefault(guid, [])
        for entry in entries:
            if (entry.device_class == device_class
                    and entry.vendor == vendor):
                raise DepotError(
                    f"duplicate depot registration for {guid} "
                    f"(class={device_class}, vendor={vendor})")
        entries.append(DepotEntry(guid=guid, implementation=implementation,
                                  device_class=device_class, vendor=vendor))

    def lookup(self, guid: Guid, device_class: str,
               vendor: Optional[str] = None) -> DepotEntry:
        """Most specific implementation for a GUID on a device class."""
        entries = self._entries.get(guid, [])
        candidates = [
            e for e in entries
            if (e.device_class is None or e.device_class == device_class)
            and (e.vendor is None or vendor is None or e.vendor == vendor)
        ]
        if not candidates:
            raise DepotError(
                f"depot has no implementation of {guid} for device class "
                f"{device_class!r} (registered: "
                f"{[(e.device_class, e.vendor) for e in entries]})")
        return max(candidates, key=DepotEntry.specificity)

    def has(self, guid: Guid, device_class: str) -> bool:
        """True if some registered build can serve (guid, device_class)."""
        try:
            self.lookup(guid, device_class)
            return True
        except DepotError:
            return False

    def guids(self) -> Tuple[Guid, ...]:
        """All GUIDs with at least one registered implementation."""
        return tuple(self._entries)
