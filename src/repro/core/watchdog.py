"""Heartbeat watchdog — device-death detection over OOB channels.

The paper's runtime learns about device failure implicitly (a crashed
Offcode's parent tears down its subtree) but has no way to *notice* a
silently wedged device.  This module adds the standard embedded-systems
answer: the host pings every device runtime over a dedicated low-priority
OOB-class channel; firmware answers each ping with a pong; a device that
misses ``miss_threshold`` consecutive beats is declared dead and handed
to :meth:`repro.core.runtime.HydraRuntime.on_device_failure` for
recovery.

Design constraints imposed by the simulation engine:

* Ping rounds run in *disposable wrapped processes*: a failed process
  nobody waits on crashes the whole simulator, so every round catches
  its own exceptions into an outcome dict the monitor inspects.
* Nothing is ever ``interrupt()``-ed.  A process abandoned while waiting
  on a channel sequencer would leak the slot and wedge the channel;
  instead, late rounds are left to finish on their own and their stale
  pongs are recognised (and ignored) by sequence number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.errors import DeviceFailedError, HydraError
from repro.core.channel import ChannelConfig, Endpoint
from repro.sim.engine import Event
from repro.sim.trace import emit as trace_emit

__all__ = ["WatchdogConfig", "DeviceWatchdog"]


@dataclass(frozen=True)
class WatchdogConfig:
    """Timing parameters of the heartbeat protocol.

    Defaults give a 2 ms beat with a 1 ms reply deadline and death after
    3 consecutive misses — fast enough to bound recovery latency in the
    TiVoPC chaos scenario, slow enough that a busy-but-alive device
    (heartbeats share the device CPU with real work) never trips it.
    """

    period_ns: int = 2_000_000
    deadline_ns: int = 1_000_000
    miss_threshold: int = 3
    pong_cost_ns: int = 2_000

    def __post_init__(self) -> None:
        if self.period_ns <= 0 or self.deadline_ns <= 0:
            raise HydraError("watchdog period and deadline must be positive")
        if self.miss_threshold <= 0:
            raise HydraError(
                f"miss_threshold must be positive: {self.miss_threshold}")
        if self.pong_cost_ns < 0:
            raise HydraError(
                f"pong_cost_ns must be non-negative: {self.pong_cost_ns}")


class _DeviceWatch:
    """Per-device heartbeat state (host side)."""

    def __init__(self, name: str, channel, host_ep: Endpoint) -> None:
        self.name = name
        self.channel = channel
        self.host_ep = host_ep
        self.seq = 0
        self.beats = 0
        self.missed = 0
        self.last_pong_seq = 0
        self.status = "alive"            # alive | suspect | dead
        # (at_ns, status) appended on every *change* — never on a repeat,
        # so consumers (the supervisor's flap detector) see monotone,
        # deduplicated episodes.  The initial "alive" is not recorded:
        # every "alive" entry is a genuine recovery.
        self.transitions: List[Tuple[int, str]] = []
        self.waiter: Optional[tuple] = None   # (seq, Event) of live round
        self.declared_dead_at_ns: Optional[int] = None


class DeviceWatchdog:
    """Host-side heartbeat service over one runtime's devices."""

    def __init__(self, runtime, config: Optional[WatchdogConfig] = None
                 ) -> None:
        self.runtime = runtime
        self.sim = runtime.sim
        self.config = config or WatchdogConfig()
        self.stopped = False
        self._watches: Dict[str, _DeviceWatch] = {}

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Open a heartbeat channel per device and start the monitors."""
        if self._watches:
            raise HydraError("watchdog already started")
        for name, device_runtime in self.runtime.device_runtimes.items():
            cfg = (ChannelConfig.unicast().reliable().sequential()
                   .copied().with_ring_slots(32).with_priority(0)
                   .labeled(f"hydra.watchdog/{name}"))
            channel = self.runtime.executive.create_channel(
                cfg, self.runtime.host_site)
            device_ep = self.runtime.executive.connect_site(
                channel, device_runtime.site)
            device_ep.install_call_handler(
                lambda message, ep=device_ep, site=device_runtime.site:
                self._pong(ep, site, message))
            watch = _DeviceWatch(name, channel, channel.creator_endpoint)
            self._watches[name] = watch
            self.sim.spawn(self._collect(watch), name=f"wd-collect-{name}")
            self.sim.spawn(self._monitor(watch), name=f"wd-monitor-{name}")
        trace_emit(self.sim, "fault",
                   f"watchdog armed over {len(self._watches)} device(s)",
                   period_ns=self.config.period_ns,
                   miss_threshold=self.config.miss_threshold)

    def stop(self) -> None:
        """Stop monitoring: monitors exit at their next tick."""
        self.stopped = True

    # -- inspection --------------------------------------------------------------

    def status_of(self, device: str) -> str:
        """``alive`` | ``suspect`` | ``dead`` for one device."""
        return self._watch(device).status

    def beats_of(self, device: str) -> int:
        """Completed ping/pong rounds for one device."""
        return self._watch(device).beats

    def declared_dead_at(self, device: str) -> Optional[int]:
        """Sim time the device was declared dead, or None."""
        return self._watch(device).declared_dead_at_ns

    def transitions_of(self, device: str) -> List[Tuple[int, str]]:
        """Status changes for one device, as ``(at_ns, status)`` tuples.

        Only *changes* are recorded (the steady initial "alive" is not),
        so an "alive" entry always marks a recovery from suspect/dead —
        the supervisor's flap detector counts exactly these.
        """
        return list(self._watch(device).transitions)

    def _watch(self, device: str) -> _DeviceWatch:
        try:
            return self._watches[device]
        except KeyError:
            raise HydraError(
                f"watchdog is not monitoring {device!r}") from None

    def _set_status(self, watch: _DeviceWatch, status: str) -> None:
        """Record a status change (idempotent: repeats are not logged)."""
        if watch.status == status:
            return
        watch.status = status
        watch.transitions.append((self.sim.now, status))

    # -- device side -------------------------------------------------------------

    def _pong(self, device_ep: Endpoint, site, message
              ) -> Generator[Event, None, None]:
        payload = message.payload
        if not (isinstance(payload, tuple) and len(payload) == 2
                and payload[0] == "ping"):
            return
        yield from site.execute(self.config.pong_cost_ns,
                                context="watchdog-pong")
        yield from device_ep.write(("pong", payload[1]), 16)

    # -- host side ---------------------------------------------------------------

    def _collect(self, watch: _DeviceWatch
                 ) -> Generator[Event, None, None]:
        # Single long-lived reader per channel: reads are never abandoned,
        # so no pong can be stolen by a stale waiter.
        try:
            while True:
                message = yield from watch.host_ep.read()
                payload = message.payload
                if not (isinstance(payload, tuple) and len(payload) == 2
                        and payload[0] == "pong"):
                    continue
                watch.last_pong_seq = payload[1]
                if watch.waiter is not None and watch.waiter[0] == payload[1]:
                    _seq, event = watch.waiter
                    watch.waiter = None
                    event.succeed(payload[1])
        except Exception:
            return   # channel torn down during recovery

    def _ping(self, watch: _DeviceWatch, seq: int, outcome: dict
              ) -> Generator[Event, None, None]:
        try:
            yield from watch.host_ep.write(("ping", seq), 16)
        except Exception as exc:
            outcome["error"] = exc

    def _monitor(self, watch: _DeviceWatch
                 ) -> Generator[Event, None, None]:
        cfg = self.config
        while True:
            yield self.sim.timeout(cfg.period_ns)
            if self.stopped:
                return
            watch.seq += 1
            seq = watch.seq
            round_waiter = Event(self.sim)
            watch.waiter = (seq, round_waiter)
            outcome: dict = {}
            self.sim.spawn(self._ping(watch, seq, outcome),
                           name=f"wd-ping-{watch.name}-{seq}")
            yield self.sim.any_of(
                [round_waiter, self.sim.timeout(cfg.deadline_ns)])
            if round_waiter.triggered:
                watch.beats += 1
                if watch.missed:
                    trace_emit(self.sim, "fault",
                               f"watchdog: {watch.name} recovered after "
                               f"{watch.missed} missed beat(s)",
                               device=watch.name)
                watch.missed = 0
                self._set_status(watch, "alive")
                continue
            watch.waiter = None
            if isinstance(outcome.get("error"), DeviceFailedError):
                self._declare_dead(watch, "crash detected")
                return
            watch.missed += 1
            self._set_status(watch, "suspect")
            tel = self.sim.telemetry
            if tel is not None:
                tel.instant("watchdog.miss", "watchdog",
                            f"watchdog:{watch.name}", device=watch.name,
                            missed=watch.missed,
                            threshold=cfg.miss_threshold)
            trace_emit(self.sim, "fault",
                       f"watchdog: {watch.name} missed beat "
                       f"{watch.missed}/{cfg.miss_threshold}",
                       device=watch.name, missed=watch.missed)
            if watch.missed >= cfg.miss_threshold:
                self._declare_dead(
                    watch, f"{watch.missed} consecutive missed beats")
                return

    def _declare_dead(self, watch: _DeviceWatch, reason: str) -> None:
        self._set_status(watch, "dead")
        watch.declared_dead_at_ns = self.sim.now
        tel = self.sim.telemetry
        if tel is not None:
            tel.instant("watchdog.dead", "watchdog",
                        f"watchdog:{watch.name}", device=watch.name,
                        reason=reason)
        trace_emit(self.sim, "fault",
                   f"watchdog: declaring {watch.name} dead ({reason})",
                   device=watch.name)
        self.sim.spawn(self._recover(watch.name),
                       name=f"wd-recover-{watch.name}")

    def _recover(self, name: str) -> Generator[Event, None, None]:
        try:
            yield from self.runtime.on_device_failure(name)
        except Exception as exc:
            # Recovery is best-effort; a failure here must not take the
            # simulator down with it (nobody awaits this process) — but
            # it must not vanish either: stamp the incident as failed so
            # callers and the chaos invariant checker see a partial
            # recovery instead of one that silently never completes.
            trace_emit(self.sim, "fault",
                       f"recovery of {name} failed: {exc!r}", device=name)
            incident = next(
                (i for i in reversed(self.runtime.incidents)
                 if i.device == name), None)
            if incident is None:
                from repro.core.runtime import RecoveryIncident
                incident = RecoveryIncident(device=name,
                                            died_at_ns=self.sim.now)
                self.runtime.incidents.append(incident)
            if incident.recovered_at_ns is None:
                incident.error = incident.error or repr(exc)
                incident.failed_at_ns = self.sim.now
