"""Descriptor rings for zero-copy channels.

Figure 6's zero-copy NIC channel is built from "two kernel buffer rings"
— the *InRing* holds descriptors pointing at host memory containing Call
objects; the *OutRing* holds pre-posted application descriptors for
spontaneous device-to-host messages.  The device keeps "a shadowed copy
of the ring descriptors" and channel management lives in a shared memory
region.

:class:`DescriptorRing` models the data structure: a fixed-size circular
buffer of descriptors with producer/consumer cursors and explicit
full/empty behaviour, because reliable channels must block (not drop)
"even though buffer descriptors are not available" (Section 3.2) while
unreliable ones drop and count.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.errors import ChannelError

__all__ = ["Descriptor", "DescriptorRing"]


class Descriptor:
    """One ring entry: an address/length pair plus a payload reference.

    ``__slots__`` because zero-copy channels mint one per message; the
    instances are hot-path allocations the simulator churns through.
    """

    __slots__ = ("address", "length", "payload")

    def __init__(self, address: int, length: int, payload: Any = None) -> None:
        self.address = address
        self.length = length
        self.payload = payload

    def __repr__(self) -> str:
        return (f"Descriptor(address={self.address}, length={self.length}, "
                f"payload={self.payload!r})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Descriptor):
            return NotImplemented
        return (self.address == other.address and self.length == other.length
                and self.payload == other.payload)


class DescriptorRing:
    """Fixed-capacity circular descriptor buffer.

    Pure data structure — timing is charged by the channel provider that
    owns it.  ``post`` produces, ``consume`` consumes; both maintain the
    invariant ``0 <= occupancy <= capacity``.
    """

    def __init__(self, capacity: int, name: str = "ring") -> None:
        if capacity <= 0:
            raise ChannelError(f"ring capacity must be positive: {capacity}")
        self.capacity = capacity
        self.name = name
        self._slots: List[Optional[Descriptor]] = [None] * capacity
        self._head = 0      # next slot to consume
        self._tail = 0      # next slot to fill
        self._count = 0
        self.posted = 0
        self.consumed = 0
        self.rejected = 0   # posts refused because the ring was full

    @property
    def occupancy(self) -> int:
        """Descriptors currently in the ring."""
        return self._count

    @property
    def full(self) -> bool:
        """True when no slot is free."""
        return self._count == self.capacity

    @property
    def empty(self) -> bool:
        """True when no descriptor is pending."""
        return self._count == 0

    def post(self, descriptor: Descriptor) -> bool:
        """Add a descriptor; returns False (and counts) if full."""
        if self.full:
            self.rejected += 1
            return False
        self._slots[self._tail] = descriptor
        self._tail = (self._tail + 1) % self.capacity
        self._count += 1
        self.posted += 1
        return True

    def consume(self) -> Descriptor:
        """Remove the oldest descriptor; raises when empty."""
        if self.empty:
            raise ChannelError(f"ring {self.name!r} consumed while empty")
        descriptor = self._slots[self._head]
        self._slots[self._head] = None
        self._head = (self._head + 1) % self.capacity
        self._count -= 1
        self.consumed += 1
        assert descriptor is not None
        return descriptor

    def peek(self) -> Optional[Descriptor]:
        """The oldest descriptor without consuming it (None if empty)."""
        return self._slots[self._head] if not self.empty else None
