"""The HYDRA runtime facade — the Offloading Access Layer.

One :class:`HydraRuntime` exists per host (the paper's user-level +
kernel-level OAL pair collapsed into one object; the split is an
OS-packaging detail, not a behavioural one).  It owns:

* the host :class:`~repro.core.sites.HostSite` and one
  :class:`~repro.core.devruntime.DeviceRuntime` per programmable device,
* the :class:`~repro.core.executive.ChannelExecutive` with a loopback
  provider, one DMA provider per device and a peer-DMA provider,
* the :class:`~repro.core.memory.MemoryManager`, the
  :class:`~repro.core.resources.ResourceTree`, the
  :class:`~repro.core.odf.OdfLibrary`, the
  :class:`~repro.core.depot.OffcodeDepot`, the loader registry and the
  layout resolver,
* the pseudo Offcodes (``hydra.Runtime``, ``hydra.Heap``,
  ``hydra.ChannelExecutive`` on the host; a ``hydra.Heap`` per device).

The programming-model entry points mirror the paper's API: a process
calls ``CreateOffcode`` (:meth:`create_offcode`) with an ODF path and
receives a proxy; ``GetOffcode`` (:meth:`get_offcode`) returns any
registered Offcode by bind name; ``CreateChannel`` goes through the
executive exactly as in Figure 3.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import (Callable, Dict, Generator, Iterable, List, Optional,
                    Set, Tuple)

from repro.errors import (DeploymentError, HydraError, MigrationError,
                          OffcodeError)
from repro.core.channel import Channel, ChannelConfig, ChannelStats
from repro.core.checkpoint import (CheckpointConfig, CheckpointService,
                                   capture_checkpoint, checkpointable)
from repro.core.deployment import DeploymentPipeline, DeploymentReport
from repro.core.depot import OffcodeDepot
from repro.core.devruntime import DeviceRuntime
from repro.core.executive import ChannelExecutive
from repro.core.layout.objectives import Objective
from repro.core.layout.resolver import OffloadLayoutResolver
from repro.core.loader import LoaderRegistry
from repro.core.memory import MemoryManager
from repro.core.odf import OdfDocument, OdfLibrary
from repro.core.offcode import Offcode, OffcodeState
from repro.core.providers import (
    DmaChannelProvider,
    LoopbackProvider,
    PeerDmaProvider,
)
from repro.core.proxy import Proxy
from repro.core.pseudo import (
    ChannelExecutiveOffcode,
    HeapOffcode,
    RuntimeOffcode,
)
from repro.core.resources import FinalizerFailure, ResourceTree
from repro.core.sites import ExecutionSite, HostSite
from repro.core.watchdog import DeviceWatchdog, WatchdogConfig
from repro.hw.machine import Machine
from repro.resilience.migration import HoldingGate, MigrationRecord
from repro.resilience.supervisor import Supervisor, SupervisorConfig
from repro.sim.engine import Event, Simulator
from repro.sim.resources import Resource as SimResource
from repro.sim.trace import emit as trace_emit

__all__ = ["HydraRuntime", "DeploymentSpec", "DeploymentResult",
           "CreateOffcodeResult", "CleanupReport", "RecoveryIncident"]


@dataclass
class CleanupReport:
    """What :meth:`HydraRuntime.fail_offcode` tore down, and how it went.

    Wraps the finalizer failures collected during a subtree release with
    the identity of the failed Offcode, so callers (and the trace log)
    know *whose* destructor misbehaved rather than receiving a bare
    exception list.
    """

    bindname: str
    failures: List[FinalizerFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every finalizer ran cleanly."""
        return not self.failures

    @property
    def errors(self) -> List[Exception]:
        """Just the exceptions, for callers that only count them."""
        return [failure.exception for failure in self.failures]

    def __len__(self) -> int:
        return len(self.failures)


@dataclass
class RecoveryIncident:
    """One device death handled by :meth:`HydraRuntime.on_device_failure`.

    ``latency_ns`` — declared-dead to recovery-complete — is the metric
    the chaos scenario and the recovery benchmark track.  A recovery
    that *fails* stamps ``failed_at_ns``/``error`` instead of
    ``recovered_at_ns``, so callers and the chaos invariant checker see
    partial recoveries rather than incidents that silently never
    complete.  ``restored`` lists victims whose last checkpoint was
    restored into the replacement instance; ``replayed`` counts unacked
    channel messages re-sent on replacement channels; ``hook_errors``
    collects recovery-hook exceptions (non-fatal, but visible).
    """

    device: str
    died_at_ns: int
    victims: List[str] = field(default_factory=list)
    reports: List[CleanupReport] = field(default_factory=list)
    placement: Dict[str, str] = field(default_factory=dict)
    recovered_at_ns: Optional[int] = None
    failed_at_ns: Optional[int] = None
    error: Optional[str] = None
    restored: List[str] = field(default_factory=list)
    replayed: int = 0
    hook_errors: List[str] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        """True once the victims were re-deployed (or none existed)."""
        return self.recovered_at_ns is not None

    @property
    def failed(self) -> bool:
        """True when recovery gave up (re-deploy raised)."""
        return self.failed_at_ns is not None

    @property
    def latency_ns(self) -> Optional[int]:
        """Death-declaration to recovery-complete, in sim ns."""
        if self.recovered_at_ns is None:
            return None
        return self.recovered_at_ns - self.died_at_ns


@dataclass
class CreateOffcodeResult:
    """What ``CreateOffcode`` hands back to the OA-application."""

    proxy: Proxy
    offcode: Offcode
    channel: Channel
    report: DeploymentReport

    @property
    def location(self) -> str:
        """Where the root Offcode landed (device name or 'host')."""
        return self.offcode.location


@dataclass(frozen=True)
class DeploymentSpec:
    """Typed description of one deployment request.

    The single entry point :meth:`HydraRuntime.deploy` takes one of
    these instead of the historical ``create_offcode(path, interface)``
    / ``deploy_joint(paths)`` split: one ODF path deploys a single
    application, several paths deploy them under one joint layout solve
    (Section 5's multi-application scenario).

    ``proxy`` asks for a host-side proxy channel to the first root;
    ``interface`` names the interface it should expose (default: the
    root's first declared interface); ``proxy_config`` overrides the
    proxy channel's :class:`~repro.core.channel.ChannelConfig` — the
    place to hang ``.batched(...)`` watermarks on the control plane.
    """

    odf_paths: Tuple[str, ...]
    interface: Optional[str] = None
    objective: Optional[Objective] = None
    proxy: bool = True
    proxy_config: Optional[ChannelConfig] = None

    def __post_init__(self) -> None:
        if isinstance(self.odf_paths, str):
            # A lone path is a common slip; accept it rather than
            # iterating its characters.
            object.__setattr__(self, "odf_paths", (self.odf_paths,))
        else:
            object.__setattr__(self, "odf_paths", tuple(self.odf_paths))
        if not self.odf_paths:
            raise DeploymentError(
                "DeploymentSpec needs at least one ODF path")


@dataclass
class DeploymentResult:
    """What :meth:`HydraRuntime.deploy` returns.

    ``proxy`` and ``channel`` are populated only when the spec asked for
    a proxy (the default) — multi-application deployments typically
    reach each root via :meth:`HydraRuntime.get_offcode` instead.
    """

    report: DeploymentReport
    offcode: Offcode
    proxy: Optional[Proxy] = None
    channel: Optional[Channel] = None

    @property
    def location(self) -> str:
        """Where the first root Offcode landed (device name or 'host')."""
        return self.offcode.location


class HydraRuntime:
    """The per-host runtime instance."""

    def __init__(self, machine: Machine, kernel=None,
                 library: Optional[OdfLibrary] = None,
                 depot: Optional[OffcodeDepot] = None,
                 solver=None) -> None:
        self.machine = machine
        self.sim: Simulator = machine.sim
        self.kernel = kernel
        self.host_site = HostSite(machine)
        self.library = library or OdfLibrary()
        self.depot = depot or OffcodeDepot()
        self.memory = MemoryManager(machine)
        self.resources = ResourceTree(f"hydra@{machine.name}")
        self.loaders = LoaderRegistry()
        self.executive = ChannelExecutive()
        self.pipeline = DeploymentPipeline(self)
        self.resolver = OffloadLayoutResolver(machine, self.depot,
                                              solver=solver)
        self._registry: Dict[str, Offcode] = {}
        self._documents: Dict[str, OdfDocument] = {}

        # Fault handling: devices declared dead, the watchdog (armed on
        # demand), the incident log, and recovery hooks applications use
        # to rewire data channels after a host-fallback redeploy.
        self.failed_devices: Set[str] = set()
        # Proactive resilience: standby devices are healthy spares the
        # layout never uses until a migration pins onto them (so adding
        # one cannot perturb a baseline solve); quarantined devices are
        # flapping ones the supervisor pulled from rotation.  Both are
        # excluded from every layout solve alongside failed devices.
        self.standby_devices: Set[str] = set()
        self.quarantined_devices: Set[str] = set()
        self.watchdog: Optional[DeviceWatchdog] = None
        self.checkpointer: Optional[CheckpointService] = None
        self.supervisor: Optional[Supervisor] = None
        self.incidents: List[RecoveryIncident] = []
        self.migrations: List[MigrationRecord] = []
        self._recovery_hooks: List[Callable] = []
        # Live proxies by bindname, so a migration can fence and rebind
        # them in place (callers keep their Proxy object across cutover).
        self._proxies: Dict[str, List[Proxy]] = {}
        # Overlapping device deaths serialize their re-deploys: a solve
        # mutating the registry while another incident's solve runs
        # would hand out torn layouts.
        self._recovery_lock = SimResource(self.sim, capacity=1)

        # One device runtime per programmable device, each with its own
        # DMA channel provider ("an extended driver for each device").
        self.device_runtimes: Dict[str, DeviceRuntime] = {}
        self.executive.register_provider(LoopbackProvider(machine))
        self.executive.register_provider(PeerDmaProvider(machine))
        # One-sided substrate: devices advertising the "rdma" feature
        # get an RdmaProvider next to their DMA provider; the executive
        # ranks the two by cost like any other pair.  (Function-level
        # import: repro.rdma depends on repro.core.)
        from repro.rdma.provider import RDMA_FEATURE, RdmaProvider
        self.rdma_providers: Dict[str, RdmaProvider] = {}
        for name, device in machine.devices.items():
            runtime = DeviceRuntime(device)
            self.device_runtimes[name] = runtime
            self.executive.register_provider(DmaChannelProvider(
                machine, device, self.memory, kernel=kernel))
            if device.spec.has_feature(RDMA_FEATURE):
                provider = RdmaProvider(machine, device, self.memory,
                                        kernel=kernel)
                self.rdma_providers[name] = provider
                self.executive.register_provider(provider)

        self._bootstrap_pseudo_offcodes()

    # -- bootstrap --------------------------------------------------------------------

    def _bootstrap_pseudo_offcodes(self) -> None:
        """Pseudo Offcodes exist before simulated time begins; their
        bring-up is part of OS boot, not of any measured deployment, so
        they enter RUNNING directly."""
        host_pseudos = (
            RuntimeOffcode(self.host_site, self),
            HeapOffcode(self.host_site),
            ChannelExecutiveOffcode(self.host_site, self.executive),
        )
        for pseudo in host_pseudos:
            pseudo.state = OffcodeState.RUNNING
            self._registry[pseudo.bindname] = pseudo
        for runtime in self.device_runtimes.values():
            heap = HeapOffcode(runtime.site)
            heap.state = OffcodeState.RUNNING
            runtime.offcodes[heap.bindname] = heap

    # -- registry -----------------------------------------------------------------------

    def register_offcode(self, offcode: Offcode,
                         document: OdfDocument) -> None:
        """Enter a deployed Offcode into the registry + resource tree."""
        if offcode.bindname in self._registry:
            raise OffcodeError(
                f"offcode {offcode.bindname!r} already registered")
        self._registry[offcode.bindname] = offcode
        self._documents[offcode.bindname] = document
        self.resources.track(offcode.bindname, kind="offcode",
                             payload=offcode)

    def locate(self, bindname: str) -> Optional[Offcode]:
        """Find a registered Offcode (host registry, then devices)."""
        offcode = self._registry.get(bindname)
        if offcode is not None:
            return offcode
        for runtime in self.device_runtimes.values():
            found = runtime.find(bindname)
            if found is not None and found.bindname != "hydra.Heap":
                return found
        return None

    def registered_bindnames(self) -> Iterable[str]:
        """Bind names registered on the host side."""
        return self._registry.keys()

    def deployed_offcodes(self) -> List[Offcode]:
        """Every registered Offcode instance (pseudo and user)."""
        return list(self._registry.values())

    def get_offcode(self, bindname: str) -> Offcode:
        """The ``GetOffcode`` API: pseudo and user Offcodes by name."""
        offcode = self.locate(bindname)
        if offcode is None:
            raise HydraError(f"no offcode registered as {bindname!r}")
        return offcode

    def rdma_provider(self, name: str):
        """The :class:`~repro.rdma.provider.RdmaProvider` of one
        rdma-featured device (HydraError if the device has none)."""
        try:
            return self.rdma_providers[name]
        except KeyError:
            raise HydraError(
                f"device {name!r} has no RDMA provider (missing the "
                "'rdma' feature?)") from None

    def device_runtime(self, name: str) -> DeviceRuntime:
        """The firmware runtime of one device (HydraError if absent)."""
        try:
            return self.device_runtimes[name]
        except KeyError:
            raise HydraError(
                f"no device runtime for {name!r}; "
                f"have {sorted(self.device_runtimes)}") from None

    def site_of(self, location: str) -> ExecutionSite:
        """Execution site for 'host' or a device name."""
        if location == "host":
            return self.host_site
        return self.device_runtime(location).site

    # -- programming model entry points ----------------------------------------------------

    def deploy(self, spec: DeploymentSpec
               ) -> Generator[Event, None, DeploymentResult]:
        """The unified deployment entry point.

        Runs Figure 5 for the spec's ODF closure(s) — one path deploys a
        single application; several run under one joint layout solve —
        and, when ``spec.proxy`` is set, wires a host-side proxy channel
        to the first root and returns a transparent proxy over the
        requested interface.
        """
        if len(spec.odf_paths) == 1:
            report = yield from self.pipeline.deploy(
                spec.odf_paths[0], objective=spec.objective)
        else:
            report = yield from self.pipeline.deploy_many(
                list(spec.odf_paths), objective=spec.objective)
        offcode = report.root_offcode
        result = DeploymentResult(report=report, offcode=offcode)
        if not spec.proxy:
            return result
        document = self.library.load(spec.odf_paths[0])
        if spec.interface is None:
            if not document.interfaces:
                raise HydraError(
                    f"{document.bindname} declares no interfaces; "
                    "pass one explicitly")
            iface = document.interfaces[0]
        else:
            iface = document.interface(spec.interface)
        config = spec.proxy_config or ChannelConfig.unicast()
        channel = self.executive.create_channel(
            config.with_target(offcode.location), self.host_site)
        self.executive.connect_offcode(channel, offcode)
        # The proxy channel belongs to the Offcode's resource subtree.
        try:
            node = self.resources.lookup(offcode.bindname)
            self.resources.track(
                f"{offcode.bindname}/proxy-{channel.channel_id}",
                kind="channel", parent=node, finalizer=channel.close)
        except HydraError:
            pass   # pseudo/reused offcodes may not be tracked
        result.channel = channel
        result.proxy = Proxy(iface, channel, channel.creator_endpoint)
        self._proxies.setdefault(offcode.bindname, []).append(result.proxy)
        return result

    def create_offcode(self, odf_path: str,
                       interface: Optional[str] = None,
                       objective: Optional[Objective] = None
                       ) -> Generator[Event, None, CreateOffcodeResult]:
        """``CreateOffcode``: deploy the ODF closure, connect a channel
        to the root Offcode and return a user-space proxy for it.

        .. deprecated::
            Thin wrapper over :meth:`deploy`; build a
            :class:`DeploymentSpec` instead.
        """
        warnings.warn(
            "HydraRuntime.create_offcode is deprecated; use "
            "runtime.deploy(DeploymentSpec(odf_paths=(path,)))",
            DeprecationWarning, stacklevel=2)
        result = yield from self.deploy(DeploymentSpec(
            odf_paths=(odf_path,), interface=interface,
            objective=objective))
        return CreateOffcodeResult(proxy=result.proxy,
                                   offcode=result.offcode,
                                   channel=result.channel,
                                   report=result.report)

    def deploy_joint(self, odf_paths: list,
                     objective: Optional[Objective] = None
                     ) -> Generator[Event, None, DeploymentReport]:
        """Deploy several applications under one joint layout solve
        (Section 5's multi-application scenario); returns the combined
        report.  Use :meth:`get_offcode` to reach each root afterwards.

        .. deprecated::
            Thin wrapper over :meth:`deploy`; build a
            :class:`DeploymentSpec` with several paths and
            ``proxy=False`` instead.
        """
        warnings.warn(
            "HydraRuntime.deploy_joint is deprecated; use "
            "runtime.deploy(DeploymentSpec(odf_paths=paths, proxy=False))",
            DeprecationWarning, stacklevel=2)
        result = yield from self.deploy(DeploymentSpec(
            odf_paths=tuple(odf_paths), objective=objective, proxy=False))
        return result.report

    def create_channel(self, config: ChannelConfig) -> Channel:
        """``CreateChannel`` (Figure 3, step 1): creator endpoint on the
        host; connect it with :meth:`connect_offcode`."""
        return self.executive.create_channel(config, self.host_site)

    def connect_offcode(self, channel: Channel, offcode: Offcode):
        """``ConnectOffcode`` (Figure 3, step 2)."""
        return self.executive.connect_offcode(channel, offcode)

    def stop_offcode(self, bindname: str
                     ) -> Generator[Event, None, None]:
        """Stop one Offcode and release its resource subtree."""
        offcode = self.get_offcode(bindname)
        yield from offcode.stop()
        if bindname in self._registry:
            del self._registry[bindname]
            self._documents.pop(bindname, None)
            self.resources.release(bindname)
        for runtime in self.device_runtimes.values():
            if runtime.find(bindname) is not None:
                runtime.evict_offcode(bindname)

    def fail_offcode(self, bindname: str) -> CleanupReport:
        """Crash handling: kill the Offcode and release its subtree.

        "Resources are managed hierarchically to allow for robust
        clean-up of child resources in the case of a failing parent
        object" (Section 4).  Returns a :class:`CleanupReport`; finalizer
        failures are collected (and traced), never raised mid-cleanup.
        """
        offcode = self.get_offcode(bindname)
        offcode.kill()
        failures: List[FinalizerFailure] = []
        if bindname in self._registry:
            del self._registry[bindname]
            self._documents.pop(bindname, None)
            failures = self.resources.release(bindname)
        for runtime in self.device_runtimes.values():
            if runtime.find(bindname) is not None:
                runtime.evict_offcode(bindname)
        report = CleanupReport(bindname=bindname, failures=failures)
        for failure in failures:
            trace_emit(self.sim, "fault",
                       f"finalizer of {failure.key} ({failure.kind}) "
                       f"failed during teardown of {bindname}: "
                       f"{failure.exception!r}",
                       offcode=bindname, resource=failure.key)
        return report

    # -- fault detection & recovery ---------------------------------------------------

    def start_watchdog(self, config: Optional[WatchdogConfig] = None
                       ) -> DeviceWatchdog:
        """Arm the heartbeat watchdog over every device runtime."""
        if self.watchdog is not None:
            raise HydraError("watchdog already started")
        self.watchdog = DeviceWatchdog(self, config)
        self.watchdog.start()
        return self.watchdog

    def start_checkpoints(self, config: Optional[CheckpointConfig] = None
                          ) -> CheckpointService:
        """Arm the periodic checkpoint service (see repro.core.checkpoint)."""
        if self.checkpointer is not None:
            raise HydraError("checkpoint service already started")
        self.checkpointer = CheckpointService(self, config)
        self.checkpointer.start()
        return self.checkpointer

    def start_supervisor(self, config: Optional[SupervisorConfig] = None
                         ) -> Supervisor:
        """Arm the self-healing supervisor loop (repro.resilience).

        Consumes watchdog status transitions and channel health to
        quarantine flapping devices, drain them via :meth:`migrate`, and
        engage admission control at the executive on brownout.
        """
        if self.supervisor is not None:
            raise HydraError("supervisor already started")
        self.supervisor = Supervisor(self, config)
        self.supervisor.start()
        return self.supervisor

    def add_recovery_hook(self, hook: Callable) -> None:
        """Register ``hook(device_name, incident)`` — a generator run
        after victims are re-deployed, before the incident is declared
        recovered; applications use it to rewire data channels."""
        self._recovery_hooks.append(hook)

    def channel_stats(self) -> List[ChannelStats]:
        """Delivery accounting snapshots for every executive channel."""
        return [channel.stats() for channel in self.executive.channels]

    def _closure_documents(self, bindname: str,
                           collected: Dict[str, OdfDocument]) -> None:
        document = self._documents.get(bindname)
        if document is None or bindname in collected:
            return
        collected[bindname] = document
        for imp in document.imports:
            self._closure_documents(imp.bindname, collected)

    def on_device_failure(self, name: str
                          ) -> Generator[Event, None, None]:
        """Full recovery path for a declared-dead device.

        Kills and releases every victim Offcode on the device, captures
        unacked messages from channels about to die with it, closes
        those channels, fences the device into fixed-function mode,
        re-solves the layout with the device excluded (degraded mode:
        mandatory constraints droppable, survivors pinned) and
        re-deploys the victims — the paper's host-based baseline.  The
        last shipped checkpoint (if any) is restored into each
        replacement instance, application recovery hooks rewire data
        channels, and the captured unacked messages are replayed on the
        replacement channels (at-least-once across the recovery
        boundary: a message whose ack died with the wire may arrive
        twice).  Only after all of that is the incident stamped
        recovered; a re-deploy failure stamps ``failed_at_ns``/``error``
        instead so partial recoveries are visible.

        Overlapping incidents serialize on the recovery lock, but each
        marks its device failed *before* waiting so a concurrent solve
        already excludes it.
        """
        if name in self.failed_devices:
            return
        device_runtime = self.device_runtime(name)
        self.failed_devices.add(name)
        incident = RecoveryIncident(device=name, died_at_ns=self.sim.now)
        self.incidents.append(incident)
        tel = self.sim.telemetry
        span = token = None
        if tel is not None:
            span = tel.begin(f"recover.{name}", "recovery",
                             f"runtime:{self.machine.name}", device=name)
            token = tel.push_ctx(span.context)
        try:
            yield self._recovery_lock.request()
            try:
                yield from self._recover_device(name, device_runtime,
                                                incident)
            finally:
                self._recovery_lock.release()
        finally:
            if span is not None:
                tel.pop_ctx(token)
                tel.end(span, recovered=incident.recovered,
                        victims=len(incident.victims),
                        replayed=incident.replayed)

    def _recover_device(self, name: str, device_runtime: DeviceRuntime,
                        incident: RecoveryIncident
                        ) -> Generator[Event, None, None]:
        victims = [bindname for bindname in list(device_runtime.offcodes)
                   if bindname != "hydra.Heap"]
        incident.victims = victims
        trace_emit(self.sim, "fault",
                   f"device {name} declared failed; "
                   f"{len(victims)} victim offcode(s)",
                   device=name, victims=tuple(victims))

        # Capture the ODF closures *before* fail_offcode forgets them.
        documents: Dict[str, OdfDocument] = {}
        for bindname in victims:
            self._closure_documents(bindname, documents)

        # Capture unacked messages *before* the channels close: a
        # noise-armed reliable channel severed mid-exchange still holds
        # the frames the wire never acknowledged.
        dead_site = device_runtime.site
        pending = self._capture_unacked(dead_site)

        for bindname in victims:
            incident.reports.append(self.fail_offcode(bindname))

        # Channels with an endpoint on the dead device are gone with it.
        for channel in self.executive.channels:
            if not channel.closed and any(
                    endpoint.site is dead_site
                    for endpoint in channel.endpoints):
                channel.close()

        device_runtime.device.fence()

        if victims:
            try:
                report = yield from self.pipeline._deploy(
                    list(documents.values()), roots=list(victims),
                    objective=None)
            except Exception as exc:
                incident.error = repr(exc)
                incident.failed_at_ns = self.sim.now
                trace_emit(self.sim, "fault",
                           f"recovery of {name} failed: {exc!r}",
                           device=name)
                return
            incident.placement = {
                bindname: report.location_of(bindname)
                for bindname in report.offcodes}
            self._restore_checkpoints(incident)
            for hook in self._recovery_hooks:
                try:
                    yield from hook(name, incident)
                except Exception as exc:
                    incident.hook_errors.append(repr(exc))
                    trace_emit(self.sim, "fault",
                               f"recovery hook failed after {name}: "
                               f"{exc!r}", device=name)
            yield from self._replay_unacked(incident, pending)

        incident.recovered_at_ns = self.sim.now
        trace_emit(self.sim, "fault",
                   f"device {name} recovery complete",
                   device=name, latency_ns=incident.latency_ns,
                   placement=tuple(sorted(incident.placement.items())),
                   restored=tuple(incident.restored),
                   replayed=incident.replayed)

    def _capture_unacked(self, dead_site: ExecutionSite) -> List[Tuple]:
        """Unacked ``(writer_bindname, label, messages)`` per dying channel.

        The writer is the channel's owning (creator-bound) Offcode; a
        channel owned by the host application (proxy channels) has no
        replacement writer to replay from and is skipped.
        """
        pending: List[Tuple] = []
        for channel in self.executive.channels:
            if channel.closed or not any(
                    endpoint.site is dead_site
                    for endpoint in channel.endpoints):
                continue
            messages = channel.unacked_messages()
            if not messages:
                continue
            writer = channel.creator_endpoint.bound_offcode
            if writer is None:
                continue
            pending.append((writer.bindname, channel.config.label,
                            messages))
        return pending

    def _restore_checkpoints(self, incident: RecoveryIncident) -> None:
        """Adopt each victim's last shipped checkpoint on its replacement."""
        store = self.depot.checkpoints
        for bindname in incident.victims:
            checkpoint = store.latest(bindname)
            if checkpoint is None:
                continue
            replacement = self.locate(bindname)
            if replacement is None or not checkpointable(replacement):
                continue
            try:
                replacement.restore(checkpoint.state)
            except Exception as exc:
                incident.hook_errors.append(
                    f"restore of {bindname}: {exc!r}")
                trace_emit(self.sim, "fault",
                           f"checkpoint restore of {bindname} failed: "
                           f"{exc!r}", offcode=bindname)
                continue
            incident.restored.append(bindname)
            trace_emit(self.sim, "fault",
                       f"{bindname} restored from checkpoint "
                       f"seq={checkpoint.seq} "
                       f"(taken {self.sim.now - checkpoint.taken_at_ns} ns "
                       "ago)", offcode=bindname, seq=checkpoint.seq)

    def _replay_unacked(self, incident: RecoveryIncident,
                        pending: List[Tuple]
                        ) -> Generator[Event, None, None]:
        """Re-send captured unacked messages on replacement channels.

        Runs after the recovery hooks so the replacement channels exist.
        Each message goes to every open, connected, same-label channel
        the relocated writer now holds; individual send failures are
        traced and skipped (the stream itself will retransmit at the
        application layer if it cares more).
        """
        for writer_bindname, label, messages in pending:
            writer = self.locate(writer_bindname)
            if writer is None:
                continue
            channels = [ch for ch in getattr(writer, "channels", [])
                        if not ch.closed and ch.connected
                        and ch.config.label == label]
            if not channels:
                continue
            for payload, size_bytes in messages:
                for channel in channels:
                    try:
                        endpoint = channel.endpoint_of(writer)
                        yield from endpoint.write(payload, size_bytes)
                        incident.replayed += 1
                    except Exception as exc:
                        trace_emit(self.sim, "fault",
                                   f"replay on {label!r} for "
                                   f"{writer_bindname} failed: {exc!r}",
                                   offcode=writer_bindname)

    # -- live migration -----------------------------------------------------------------

    def migrate(self, offcode, target: Optional[str] = None, *,
                prepare_timeout_ns: int = 25_000_000,
                drain_timeout_ns: int = 20_000_000,
                poll_ns: int = 250_000
                ) -> Generator[Event, None, MigrationRecord]:
        """Live-migrate one running Offcode to another device.

        The cutover state machine (see docs/fault-model.md):

        1. **fence** — new proxy calls park in a bounded
           :class:`~repro.resilience.migration.HoldingGate` (overflow is
           shed with a typed error);
        2. **quiesce** — the offcode's cooperative ``prepare_migrate``
           hook parks its thread of control at a safe point, then every
           attached RELIABLE channel is drained until its unacked queue
           is empty (bounded by ``drain_timeout_ns``) — the
           zero-loss/zero-duplicate path;
        3. **checkpoint** — an on-demand snapshot under the PR 4
           contract (:func:`~repro.core.checkpoint.capture_checkpoint`);
        4. **re-solve** — the ILP layout runs online with the source
           device banned for the victim (or the victim pinned to
           ``target``, which may be a standby device) and every survivor
           pinned in place;
        5. **restore + rewire** — the snapshot is applied on the
           destination, recovery hooks rewire data channels, leftover
           unacked messages are replayed (at-least-once fallback — empty
           whenever the drain in step 2 completed);
        6. **release** — proxies are rebound to fresh channels and the
           holding gate reopens.

        Returns the :class:`~repro.resilience.migration.MigrationRecord`
        (also appended to :attr:`migrations` before the first side
        effect).  ``downtime_ns`` on the record measures fence-to-ready.
        Raises :class:`~repro.errors.MigrationError` on failure; the
        gate is always released first, so callers never deadlock.
        """
        bindname = offcode if isinstance(offcode, str) else offcode.bindname
        victim = self.get_offcode(bindname)
        source = victim.location
        if victim.state != OffcodeState.RUNNING:
            raise MigrationError(
                f"cannot migrate {bindname}: state is {victim.state}, "
                "not RUNNING")
        if target is not None:
            if target == source:
                raise MigrationError(
                    f"{bindname} already runs on {target}")
            if target != "host" and target not in self.machine.devices:
                raise MigrationError(
                    f"unknown migration target {target!r}")
            if target in self.failed_devices:
                raise MigrationError(
                    f"migration target {target} has failed")
        record = MigrationRecord(bindname=bindname, source=source,
                                 target=target,
                                 started_at_ns=self.sim.now)
        self.migrations.append(record)
        trace_emit(self.sim, "fault",
                   f"migrating {bindname} off {source} "
                   f"(target: {target or 'auto'})",
                   offcode=bindname, source=source)
        tel = self.sim.telemetry
        span = token = None
        if tel is not None:
            span = tel.begin(f"migrate.{bindname}", "migrate",
                             f"runtime:{self.machine.name}",
                             offcode=bindname, source=source,
                             target=target or "auto")
            token = tel.push_ctx(span.context)
        gate = HoldingGate(self.sim)
        proxies = list(self._proxies.get(bindname, ()))
        try:
            yield self._recovery_lock.request()
            try:
                yield from self._migrate_locked(
                    record, victim, target, gate, proxies,
                    prepare_timeout_ns, drain_timeout_ns, poll_ns)
            finally:
                self._recovery_lock.release()
            record.completed_at_ns = self.sim.now
            trace_emit(self.sim, "fault",
                       f"{bindname} migrated {source} -> "
                       f"{record.destination} "
                       f"(downtime {record.downtime_ns} ns, "
                       f"replayed {record.replayed})",
                       offcode=bindname)
            return record
        except Exception as exc:
            record.failed_at_ns = self.sim.now
            record.error = exc
            trace_emit(self.sim, "fault",
                       f"migration of {bindname} failed: {exc!r}",
                       offcode=bindname)
            if isinstance(exc, MigrationError):
                raise
            raise MigrationError(
                f"migration of {bindname} off {source} failed: "
                f"{exc!r}") from exc
        finally:
            # The gate must never outlive the attempt, success or not.
            gate.open()
            for proxy in proxies:
                if proxy.gate is gate:
                    proxy.gate = None
            record.shed = gate.shed
            record.held_peak = gate.held_peak
            if span is not None:
                tel.pop_ctx(token)
                tel.end(span, completed=record.completed,
                        destination=record.destination or "",
                        downtime_ns=record.downtime_ns or 0,
                        drained=record.drained,
                        replayed=record.replayed, shed=record.shed)

    def _migrate_locked(self, record: MigrationRecord, victim: Offcode,
                        target: Optional[str], gate: HoldingGate,
                        proxies: List[Proxy], prepare_timeout_ns: int,
                        drain_timeout_ns: int, poll_ns: int
                        ) -> Generator[Event, None, None]:
        bindname = record.bindname
        source = record.source
        tel = self.sim.telemetry

        def step(name: str):
            if tel is None:
                return None
            # Parent under the migrate root pushed by migrate(), so the
            # whole cutover reads as one span tree.
            return tel.begin(f"migrate.{name}", "migrate",
                             f"runtime:{self.machine.name}",
                             parent=tel.current_ctx(),
                             offcode=bindname)

        def done(child) -> None:
            if child is not None:
                tel.end(child)

        # 1-2. Fence, then quiesce.
        child = step("quiesce")
        gate.close()
        for proxy in proxies:
            proxy.gate = gate
        record.quiesced_at_ns = self.sim.now
        yield from self._quiesce_for_migration(
            record, victim, prepare_timeout_ns, drain_timeout_ns, poll_ns)
        done(child)

        # 3. On-demand checkpoint (PR 4 snapshot contract).
        child = step("checkpoint")
        state = yield from capture_checkpoint(self, victim)
        done(child)

        # 4. Capture leftovers the victim sent but never saw acked, the
        # ODF closure, and the firmware port claim — then tear down.
        victim_channels = [ch for ch in getattr(victim, "channels", ())]
        pending: List[Tuple] = []
        for channel in victim_channels:
            if channel.closed:
                continue
            messages = channel.unacked_messages()
            if not messages:
                continue
            writer = channel.creator_endpoint.bound_offcode
            if writer is not victim:
                continue
            pending.append((bindname, channel.config.label, messages))
        documents: Dict[str, OdfDocument] = {}
        self._closure_documents(bindname, documents)
        old_mux = getattr(victim, "port_mux", None)
        old_port = getattr(victim, "listen_port", None)
        child = step("teardown")
        record.reports = [self.fail_offcode(bindname)]
        for channel in victim_channels:
            if not channel.closed:
                channel.close()
        done(child)

        # 5. Online re-solve: survivors pinned, the victim either pinned
        # to the requested target (standby devices become eligible via
        # ``allow``) or banned from its source.
        child = step("redeploy")
        allow = {target} if target not in (None, "host") else None
        pinned_extra = {bindname: target} if target is not None else None
        banned = {bindname: (source,)} if target is None else None
        report = yield from self.pipeline._deploy(
            list(documents.values()), roots=[bindname], objective=None,
            pinned_extra=pinned_extra, allow=allow, banned=banned)
        record.placement = {name: report.location_of(name)
                            for name in report.offcodes}
        replacement = self.get_offcode(bindname)
        record.destination = replacement.location
        done(child)

        # 6. Restore state, hand over the firmware port claim, rewire
        # data channels (same hook contract as crash recovery), replay
        # whatever the drain could not confirm.
        child = step("restore")
        if state is not None and checkpointable(replacement):
            replacement.restore(state)
            record.restored = True
        if old_mux is not None and old_port is not None:
            if getattr(replacement, "port_mux", None) is not old_mux:
                release = getattr(old_mux, "release", None)
                if release is not None:
                    release(old_port)
        done(child)
        child = step("rewire")
        for hook in self._recovery_hooks:
            try:
                yield from hook(source, record)
            except Exception as exc:
                record.hook_errors.append(exc)
                trace_emit(self.sim, "fault",
                           f"migration rewire hook failed for "
                           f"{bindname}: {exc!r}", offcode=bindname)
        yield from self._replay_unacked(record, pending)
        for proxy in proxies:
            self._rebind_proxy(proxy, replacement)
        record.restored_at_ns = self.sim.now
        done(child)

    def _quiesce_for_migration(self, record: MigrationRecord,
                               victim: Offcode, prepare_timeout_ns: int,
                               drain_timeout_ns: int, poll_ns: int
                               ) -> Generator[Event, None, None]:
        """Cooperative park, then drain every unacked queue dry.

        When both succeed, the victim holds no in-flight reliable
        traffic: teardown loses nothing and replay has nothing to
        duplicate — the exactly-once path.  Timeouts degrade to the
        recovery semantics (at-least-once via capture + replay).
        """
        parked = self.sim.spawn(
            self._run_prepare(record, victim),
            name=f"migrate-prep-{victim.bindname}")
        yield self.sim.any_of(
            (parked, self.sim.timeout(prepare_timeout_ns)))

        deadline = self.sim.now + drain_timeout_ns
        while self.sim.now < deadline:
            busy = [ch for ch in getattr(victim, "channels", ())
                    if not ch.closed and ch.unacked_messages()]
            if not busy:
                record.drained = True
                return
            yield self.sim.timeout(poll_ns)
        record.drained = not any(
            not ch.closed and ch.unacked_messages()
            for ch in getattr(victim, "channels", ()))

    def _run_prepare(self, record: MigrationRecord, victim: Offcode
                     ) -> Generator[Event, None, None]:
        """Disposable wrapper for the duck-typed quiesce hook: a failing
        or hanging hook degrades the migration, never the simulator."""
        try:
            hook = getattr(victim, "prepare_migrate", None)
            if hook is None:
                return
            result = hook()
            if result is not None:
                yield from result
        except Exception as exc:
            record.hook_errors.append(exc)
            trace_emit(self.sim, "fault",
                       f"prepare_migrate of {victim.bindname} failed: "
                       f"{exc!r}", offcode=victim.bindname)

    def _rebind_proxy(self, proxy: Proxy, offcode: Offcode) -> None:
        """Point an existing Proxy at a freshly-connected channel."""
        config = proxy.channel.config.with_target(offcode.location)
        channel = self.executive.create_channel(config, self.host_site)
        self.executive.connect_offcode(channel, offcode)
        try:
            node = self.resources.lookup(offcode.bindname)
            self.resources.track(
                f"{offcode.bindname}/proxy-{channel.channel_id}",
                kind="channel", parent=node, finalizer=channel.close)
        except HydraError:
            pass
        proxy.rebind(channel)

    def document_of(self, bindname: str) -> OdfDocument:
        """The ODF a deployed Offcode came from."""
        try:
            return self._documents[bindname]
        except KeyError:
            raise HydraError(
                f"no deployed document for {bindname!r}") from None
