"""The HYDRA runtime facade — the Offloading Access Layer.

One :class:`HydraRuntime` exists per host (the paper's user-level +
kernel-level OAL pair collapsed into one object; the split is an
OS-packaging detail, not a behavioural one).  It owns:

* the host :class:`~repro.core.sites.HostSite` and one
  :class:`~repro.core.devruntime.DeviceRuntime` per programmable device,
* the :class:`~repro.core.executive.ChannelExecutive` with a loopback
  provider, one DMA provider per device and a peer-DMA provider,
* the :class:`~repro.core.memory.MemoryManager`, the
  :class:`~repro.core.resources.ResourceTree`, the
  :class:`~repro.core.odf.OdfLibrary`, the
  :class:`~repro.core.depot.OffcodeDepot`, the loader registry and the
  layout resolver,
* the pseudo Offcodes (``hydra.Runtime``, ``hydra.Heap``,
  ``hydra.ChannelExecutive`` on the host; a ``hydra.Heap`` per device).

The programming-model entry points mirror the paper's API: a process
calls ``CreateOffcode`` (:meth:`create_offcode`) with an ODF path and
receives a proxy; ``GetOffcode`` (:meth:`get_offcode`) returns any
registered Offcode by bind name; ``CreateChannel`` goes through the
executive exactly as in Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Iterable, Optional

from repro.errors import HydraError, OffcodeError
from repro.core.channel import Channel, ChannelConfig
from repro.core.deployment import DeploymentPipeline, DeploymentReport
from repro.core.depot import OffcodeDepot
from repro.core.devruntime import DeviceRuntime
from repro.core.executive import ChannelExecutive
from repro.core.layout.objectives import Objective
from repro.core.layout.resolver import OffloadLayoutResolver
from repro.core.loader import LoaderRegistry
from repro.core.memory import MemoryManager
from repro.core.odf import OdfDocument, OdfLibrary
from repro.core.offcode import Offcode, OffcodeState
from repro.core.providers import (
    DmaChannelProvider,
    LoopbackProvider,
    PeerDmaProvider,
)
from repro.core.proxy import Proxy
from repro.core.pseudo import (
    ChannelExecutiveOffcode,
    HeapOffcode,
    RuntimeOffcode,
)
from repro.core.resources import ResourceTree
from repro.core.sites import ExecutionSite, HostSite
from repro.hw.machine import Machine
from repro.sim.engine import Event, Simulator

__all__ = ["HydraRuntime", "CreateOffcodeResult"]


@dataclass
class CreateOffcodeResult:
    """What ``CreateOffcode`` hands back to the OA-application."""

    proxy: Proxy
    offcode: Offcode
    channel: Channel
    report: DeploymentReport

    @property
    def location(self) -> str:
        """Where the root Offcode landed (device name or 'host')."""
        return self.offcode.location


class HydraRuntime:
    """The per-host runtime instance."""

    def __init__(self, machine: Machine, kernel=None,
                 library: Optional[OdfLibrary] = None,
                 depot: Optional[OffcodeDepot] = None,
                 solver=None) -> None:
        self.machine = machine
        self.sim: Simulator = machine.sim
        self.kernel = kernel
        self.host_site = HostSite(machine)
        self.library = library or OdfLibrary()
        self.depot = depot or OffcodeDepot()
        self.memory = MemoryManager(machine)
        self.resources = ResourceTree(f"hydra@{machine.name}")
        self.loaders = LoaderRegistry()
        self.executive = ChannelExecutive()
        self.pipeline = DeploymentPipeline(self)
        self.resolver = OffloadLayoutResolver(machine, self.depot,
                                              solver=solver)
        self._registry: Dict[str, Offcode] = {}
        self._documents: Dict[str, OdfDocument] = {}

        # One device runtime per programmable device, each with its own
        # DMA channel provider ("an extended driver for each device").
        self.device_runtimes: Dict[str, DeviceRuntime] = {}
        self.executive.register_provider(LoopbackProvider(machine))
        self.executive.register_provider(PeerDmaProvider(machine))
        for name, device in machine.devices.items():
            runtime = DeviceRuntime(device)
            self.device_runtimes[name] = runtime
            self.executive.register_provider(DmaChannelProvider(
                machine, device, self.memory, kernel=kernel))

        self._bootstrap_pseudo_offcodes()

    # -- bootstrap --------------------------------------------------------------------

    def _bootstrap_pseudo_offcodes(self) -> None:
        """Pseudo Offcodes exist before simulated time begins; their
        bring-up is part of OS boot, not of any measured deployment, so
        they enter RUNNING directly."""
        host_pseudos = (
            RuntimeOffcode(self.host_site, self),
            HeapOffcode(self.host_site),
            ChannelExecutiveOffcode(self.host_site, self.executive),
        )
        for pseudo in host_pseudos:
            pseudo.state = OffcodeState.RUNNING
            self._registry[pseudo.bindname] = pseudo
        for runtime in self.device_runtimes.values():
            heap = HeapOffcode(runtime.site)
            heap.state = OffcodeState.RUNNING
            runtime.offcodes[heap.bindname] = heap

    # -- registry -----------------------------------------------------------------------

    def register_offcode(self, offcode: Offcode,
                         document: OdfDocument) -> None:
        """Enter a deployed Offcode into the registry + resource tree."""
        if offcode.bindname in self._registry:
            raise OffcodeError(
                f"offcode {offcode.bindname!r} already registered")
        self._registry[offcode.bindname] = offcode
        self._documents[offcode.bindname] = document
        self.resources.track(offcode.bindname, kind="offcode",
                             payload=offcode)

    def locate(self, bindname: str) -> Optional[Offcode]:
        """Find a registered Offcode (host registry, then devices)."""
        offcode = self._registry.get(bindname)
        if offcode is not None:
            return offcode
        for runtime in self.device_runtimes.values():
            found = runtime.find(bindname)
            if found is not None and found.bindname != "hydra.Heap":
                return found
        return None

    def registered_bindnames(self) -> Iterable[str]:
        """Bind names registered on the host side."""
        return self._registry.keys()

    def get_offcode(self, bindname: str) -> Offcode:
        """The ``GetOffcode`` API: pseudo and user Offcodes by name."""
        offcode = self.locate(bindname)
        if offcode is None:
            raise HydraError(f"no offcode registered as {bindname!r}")
        return offcode

    def device_runtime(self, name: str) -> DeviceRuntime:
        """The firmware runtime of one device (HydraError if absent)."""
        try:
            return self.device_runtimes[name]
        except KeyError:
            raise HydraError(
                f"no device runtime for {name!r}; "
                f"have {sorted(self.device_runtimes)}") from None

    def site_of(self, location: str) -> ExecutionSite:
        """Execution site for 'host' or a device name."""
        if location == "host":
            return self.host_site
        return self.device_runtime(location).site

    # -- programming model entry points ----------------------------------------------------

    def create_offcode(self, odf_path: str,
                       interface: Optional[str] = None,
                       objective: Optional[Objective] = None
                       ) -> Generator[Event, None, CreateOffcodeResult]:
        """``CreateOffcode``: deploy the ODF closure, connect a channel
        to the root Offcode and return a user-space proxy for it.

        ``interface`` names the interface the proxy should expose
        (default: the root Offcode's first declared interface) — the
        ``IID`` argument of the paper's API.
        """
        report = yield from self.pipeline.deploy(odf_path,
                                                 objective=objective)
        offcode = report.root_offcode
        document = self.library.load(odf_path)
        if interface is None:
            if not document.interfaces:
                raise HydraError(
                    f"{document.bindname} declares no interfaces; "
                    "pass one explicitly")
            spec = document.interfaces[0]
        else:
            spec = document.interface(interface)
        channel = self.executive.create_channel(
            ChannelConfig().with_target(offcode.location), self.host_site)
        self.executive.connect_offcode(channel, offcode)
        # The proxy channel belongs to the Offcode's resource subtree.
        try:
            node = self.resources.lookup(offcode.bindname)
            self.resources.track(
                f"{offcode.bindname}/proxy-{channel.channel_id}",
                kind="channel", parent=node, finalizer=channel.close)
        except HydraError:
            pass   # pseudo/reused offcodes may not be tracked
        proxy = Proxy(spec, channel, channel.creator_endpoint)
        return CreateOffcodeResult(proxy=proxy, offcode=offcode,
                                   channel=channel, report=report)

    def deploy_joint(self, odf_paths: list,
                     objective: Optional[Objective] = None
                     ) -> Generator[Event, None, DeploymentReport]:
        """Deploy several applications under one joint layout solve
        (Section 5's multi-application scenario); returns the combined
        report.  Use :meth:`get_offcode` to reach each root afterwards."""
        return (yield from self.pipeline.deploy_many(odf_paths,
                                                     objective=objective))

    def create_channel(self, config: ChannelConfig) -> Channel:
        """``CreateChannel`` (Figure 3, step 1): creator endpoint on the
        host; connect it with :meth:`connect_offcode`."""
        return self.executive.create_channel(config, self.host_site)

    def connect_offcode(self, channel: Channel, offcode: Offcode):
        """``ConnectOffcode`` (Figure 3, step 2)."""
        return self.executive.connect_offcode(channel, offcode)

    def stop_offcode(self, bindname: str
                     ) -> Generator[Event, None, None]:
        """Stop one Offcode and release its resource subtree."""
        offcode = self.get_offcode(bindname)
        yield from offcode.stop()
        if bindname in self._registry:
            del self._registry[bindname]
            self._documents.pop(bindname, None)
            self.resources.release(bindname)
        for runtime in self.device_runtimes.values():
            if runtime.find(bindname) is not None:
                runtime.evict_offcode(bindname)

    def fail_offcode(self, bindname: str) -> list:
        """Crash handling: kill the Offcode and release its subtree.

        "Resources are managed hierarchically to allow for robust
        clean-up of child resources in the case of a failing parent
        object" (Section 4).  Returns any finalizer errors collected
        during teardown (never raised mid-cleanup).
        """
        offcode = self.get_offcode(bindname)
        offcode.kill()
        errors: list = []
        if bindname in self._registry:
            del self._registry[bindname]
            self._documents.pop(bindname, None)
            errors = self.resources.release(bindname)
        for runtime in self.device_runtimes.values():
            if runtime.find(bindname) is not None:
                runtime.evict_offcode(bindname)
        return errors

    def document_of(self, bindname: str) -> OdfDocument:
        """The ODF a deployed Offcode came from."""
        try:
            return self._documents[bindname]
        except KeyError:
            raise HydraError(
                f"no deployed document for {bindname!r}") from None
