"""Globally unique identifiers for Offcodes and interfaces.

"Each interface is uniquely identified by a GUID ... An Offcode object
file implements only one Offcode, and it has a GUID that is unique
across all Offcodes" (Section 3.1).  The paper's sample ODF uses plain
integers (e.g. ``7070714``); we accept integers and also derive stable
GUIDs from dotted names so libraries of Offcodes can be authored without
a central registry.
"""

from __future__ import annotations

import hashlib
from typing import Union

from repro.errors import HydraError

__all__ = ["Guid", "guid_from_name", "parse_guid"]


class Guid:
    """An immutable 64-bit identifier."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        if not isinstance(value, int):
            raise HydraError(f"GUID must be an int, got {type(value).__name__}")
        if not 0 < value < (1 << 64):
            raise HydraError(f"GUID out of range: {value}")
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, value):  # immutability
        raise AttributeError("Guid is immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Guid) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Guid", self.value))

    def __repr__(self) -> str:
        return f"Guid({self.value:#x})"

    def __str__(self) -> str:
        return str(self.value)


def guid_from_name(name: str) -> Guid:
    """Derive a stable GUID from a dotted name (e.g. ``hydra.Heap``)."""
    if not name:
        raise HydraError("cannot derive a GUID from an empty name")
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    value = int.from_bytes(digest[:8], "big") or 1
    return Guid(value)


def parse_guid(text: Union[str, int, Guid]) -> Guid:
    """Coerce ODF text (decimal or 0x-hex), an int, or a Guid to a Guid."""
    if isinstance(text, Guid):
        return text
    if isinstance(text, int):
        return Guid(text)
    text = text.strip()
    if not text:
        raise HydraError("empty GUID text")
    try:
        value = int(text, 16) if text.lower().startswith("0x") else int(text)
    except ValueError:
        raise HydraError(f"malformed GUID {text!r}") from None
    return Guid(value)
