"""Argument marshaling for Call objects.

HYDRA proxies "return a Call object that contains the relevant method
information including the serialized input parameters" (Section 3.1).
We implement a compact deterministic wire format from scratch: a
one-byte type tag followed by a length-prefixed body.  Sizes matter —
the channel layer charges bus/CPU time per serialized byte — so the
encoder reports exact encoded lengths.

Supported value types: None, bool, int, float, str, bytes, and (nested)
lists, tuples and string-keyed dicts thereof.
"""

from __future__ import annotations

import struct
from typing import Any, List, Tuple

from repro.errors import MarshalError

__all__ = ["encode", "decode", "encoded_size", "stats"]


class _MarshalStats:
    """Process-wide encoder counters.

    ``encodes`` counts full serializations.  Retried proxy calls and
    replayed batch entries must reuse their cached bytes, so tests pin
    the expected delta of this counter across those paths.  ``decodes``
    counts deserializations; both export through the telemetry registry
    (:func:`repro.telemetry.adapters.bind_marshal`) as bind-time deltas.
    """

    __slots__ = ("encodes", "decodes")

    def __init__(self) -> None:
        self.encodes = 0
        self.decodes = 0


stats = _MarshalStats()

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_LIST = b"L"
_TAG_DICT = b"M"

_MAX_DEPTH = 32


def encode(value: Any) -> bytes:
    """Serialize ``value`` to bytes.  Raises MarshalError on bad types."""
    stats.encodes += 1
    out: List[bytes] = []
    _encode_into(value, out, depth=0)
    return b"".join(out)


def encoded_size(value: Any) -> int:
    """Exact length of ``encode(value)`` (used for cost accounting)."""
    return len(encode(value))


def _encode_into(value: Any, out: List[bytes], depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise MarshalError("value nesting exceeds maximum depth")
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        body = value.to_bytes((value.bit_length() + 8) // 8 + 1,
                              "big", signed=True)
        out.append(_TAG_INT + struct.pack(">I", len(body)) + body)
    elif isinstance(value, float):
        out.append(_TAG_FLOAT + struct.pack(">d", value))
    elif isinstance(value, str):
        body = value.encode("utf-8")
        out.append(_TAG_STR + struct.pack(">I", len(body)) + body)
    elif isinstance(value, (bytes, bytearray)):
        body = bytes(value)
        out.append(_TAG_BYTES + struct.pack(">I", len(body)) + body)
    elif isinstance(value, (list, tuple)):
        out.append(_TAG_LIST + struct.pack(">I", len(value)))
        for item in value:
            _encode_into(item, out, depth + 1)
    elif isinstance(value, dict):
        out.append(_TAG_DICT + struct.pack(">I", len(value)))
        for key in value:
            if not isinstance(key, str):
                raise MarshalError(
                    f"dict keys must be str, got {type(key).__name__}")
            _encode_into(key, out, depth + 1)
            _encode_into(value[key], out, depth + 1)
    else:
        raise MarshalError(
            f"cannot marshal value of type {type(value).__name__}")


def decode(data: bytes) -> Any:
    """Deserialize bytes produced by :func:`encode`."""
    stats.decodes += 1
    value, offset = _decode_at(data, 0, depth=0)
    if offset != len(data):
        raise MarshalError(
            f"trailing garbage: {len(data) - offset} bytes after value")
    return value


def _read(data: bytes, offset: int, count: int) -> Tuple[bytes, int]:
    end = offset + count
    if end > len(data):
        raise MarshalError("truncated message")
    return data[offset:end], end


def _decode_at(data: bytes, offset: int, depth: int) -> Tuple[Any, int]:
    if depth > _MAX_DEPTH:
        raise MarshalError("message nesting exceeds maximum depth")
    tag, offset = _read(data, offset, 1)
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        raw, offset = _read(data, offset, 4)
        body, offset = _read(data, offset, struct.unpack(">I", raw)[0])
        return int.from_bytes(body, "big", signed=True), offset
    if tag == _TAG_FLOAT:
        raw, offset = _read(data, offset, 8)
        return struct.unpack(">d", raw)[0], offset
    if tag == _TAG_STR:
        raw, offset = _read(data, offset, 4)
        body, offset = _read(data, offset, struct.unpack(">I", raw)[0])
        return body.decode("utf-8"), offset
    if tag == _TAG_BYTES:
        raw, offset = _read(data, offset, 4)
        body, offset = _read(data, offset, struct.unpack(">I", raw)[0])
        return body, offset
    if tag == _TAG_LIST:
        raw, offset = _read(data, offset, 4)
        count = struct.unpack(">I", raw)[0]
        items = []
        for _ in range(count):
            item, offset = _decode_at(data, offset, depth + 1)
            items.append(item)
        return items, offset
    if tag == _TAG_DICT:
        raw, offset = _read(data, offset, 4)
        count = struct.unpack(">I", raw)[0]
        result = {}
        for _ in range(count):
            key, offset = _decode_at(data, offset, depth + 1)
            if not isinstance(key, str):
                raise MarshalError("dict key decoded to non-string")
            value, offset = _decode_at(data, offset, depth + 1)
            result[key] = value
        return result, offset
    raise MarshalError(f"unknown wire tag {tag!r}")
