"""Hierarchical resource management.

"The Resource Management unit keeps track of all active Offcodes and
related resources.  Resources are managed hierarchically to allow for
robust clean-up of child resources in the case of a failing parent
object" (Section 4).

A :class:`ResourceNode` owns children and an optional finalizer; freeing
(or failing) a node frees its whole subtree, children first, exactly
once.  Finalizer failures are collected, not raised mid-teardown, so one
bad destructor cannot leak its siblings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import ResourceError

__all__ = ["FinalizerFailure", "ResourceNode", "ResourceTree"]


@dataclass(frozen=True)
class FinalizerFailure:
    """One finalizer that raised during a subtree teardown.

    Carries enough context (which resource, what kind, what blew up) for
    :meth:`repro.core.runtime.HydraRuntime.fail_offcode` to build its
    :class:`~repro.core.runtime.CleanupReport` without re-walking the tree.
    """

    key: str
    kind: str
    exception: Exception


class ResourceNode:
    """One tracked resource with optional cleanup and children."""

    def __init__(self, name: str, kind: str = "generic",
                 finalizer: Optional[Callable[[], None]] = None,
                 payload: object = None) -> None:
        self.name = name
        self.kind = kind
        self.finalizer = finalizer
        self.payload = payload
        self.parent: Optional["ResourceNode"] = None
        self.children: List["ResourceNode"] = []
        self.freed = False

    def add_child(self, child: "ResourceNode") -> "ResourceNode":
        """Attach ``child`` beneath this node (freed before this node)."""
        if child.parent is not None:
            raise ResourceError(
                f"resource {child.name!r} already has a parent")
        if self.freed:
            raise ResourceError(
                f"cannot attach to freed resource {self.name!r}")
        child.parent = self
        self.children.append(child)
        return child

    def subtree_size(self) -> int:
        """Number of live nodes in this subtree (including self)."""
        if self.freed:
            return 0
        return 1 + sum(c.subtree_size() for c in self.children)

    def free(self) -> List[FinalizerFailure]:
        """Free the subtree, children first.  Returns finalizer failures."""
        if self.freed:
            raise ResourceError(f"double free of resource {self.name!r}")
        failures: List[FinalizerFailure] = []
        for child in reversed(self.children):
            if not child.freed:
                failures.extend(child.free())
        self.freed = True
        if self.parent is not None:
            try:
                self.parent.children.remove(self)
            except ValueError:
                pass
        if self.finalizer is not None:
            try:
                self.finalizer()
            except Exception as exc:  # collected, not raised mid-teardown
                failures.append(FinalizerFailure(
                    key=self.name, kind=self.kind, exception=exc))
        return failures

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "freed" if self.freed else f"{len(self.children)} children"
        return f"<ResourceNode {self.kind}:{self.name} {state}>"


class ResourceTree:
    """The runtime's root of all tracked resources, with name lookup."""

    def __init__(self, name: str = "hydra") -> None:
        self.root = ResourceNode(name, kind="root")
        self._index: Dict[str, ResourceNode] = {}

    def track(self, name: str, kind: str = "generic",
              parent: Optional[ResourceNode] = None,
              finalizer: Optional[Callable[[], None]] = None,
              payload: object = None) -> ResourceNode:
        """Create and attach a node under ``parent`` (default: root)."""
        if name in self._index and not self._index[name].freed:
            raise ResourceError(f"resource name {name!r} already tracked")
        node = ResourceNode(name, kind=kind, finalizer=finalizer,
                            payload=payload)
        (parent or self.root).add_child(node)
        self._index[name] = node
        return node

    def lookup(self, name: str) -> ResourceNode:
        """Live node by name (ResourceError if absent or freed)."""
        node = self._index.get(name)
        if node is None or node.freed:
            raise ResourceError(f"no live resource named {name!r}")
        return node

    def release(self, name: str) -> List[FinalizerFailure]:
        """Free one named subtree."""
        return self.lookup(name).free()

    @property
    def live_count(self) -> int:
        """Number of live tracked resources (excluding the root)."""
        return self.root.subtree_size() - 1   # exclude the root itself
