"""Call objects — the unit of inter-Offcode invocation.

"All interface methods return a Call object that contains the relevant
method information including the serialized input parameters.  Once a
Call object is obtained, it can be sent to a target device (or several
devices) by using a connected channel" (Section 3.1).

A Call carries the target interface GUID, the method name, the encoded
arguments, and (for two-way methods) a *return descriptor* the callee
uses to deliver the result — in the simulation the descriptor is a
pending event on the caller's simulator, mirroring the paper's
"embedded return descriptor [used] to DMA the return value back".
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.errors import ChannelError, InterfaceError, MarshalError
from repro.core.guid import Guid
from repro.core.interfaces import InterfaceSpec, MethodSpec
from repro.core import marshal
from repro.sim.engine import Event, Simulator

__all__ = ["Call", "CallPolicy", "ReturnDescriptor", "make_call"]


@dataclass(frozen=True)
class CallPolicy:
    """Deadline and retry parameters for proxy invocations.

    A proxy with a policy bounds every attempt by ``deadline_ns`` and
    retries up to ``max_attempts`` times with exponential backoff
    (``backoff_base_ns * backoff_factor**(attempt-1)``), jittered by
    ``jitter_frac`` using the supplied simulation RNG stream — never
    wall-clock randomness, so runs replay deterministically.
    """

    deadline_ns: int = 1_000_000
    max_attempts: int = 3
    backoff_base_ns: int = 200_000
    backoff_factor: float = 2.0
    jitter_frac: float = 0.1
    rng: Optional[random.Random] = None

    def __post_init__(self) -> None:
        if self.deadline_ns <= 0:
            raise ChannelError(
                f"deadline_ns must be positive: {self.deadline_ns}")
        if self.max_attempts <= 0:
            raise ChannelError(
                f"max_attempts must be positive: {self.max_attempts}")
        if not 0 <= self.jitter_frac < 1:
            raise ChannelError(
                f"jitter_frac must be in [0, 1): {self.jitter_frac}")

    def backoff_ns(self, attempt: int) -> int:
        """Backoff delay after the ``attempt``-th (1-based) timeout."""
        delay = self.backoff_base_ns * (
            self.backoff_factor ** max(0, attempt - 1))
        if self.rng is not None and self.jitter_frac > 0:
            delay *= 1.0 + self.rng.uniform(-self.jitter_frac,
                                            self.jitter_frac)
        return max(1, round(delay))

_call_ids = itertools.count(1)


class ReturnDescriptor:
    """Where the return value of a two-way Call should be delivered."""

    def __init__(self, sim: Simulator) -> None:
        self.event: Event = sim.event()
        self.delivered = False

    def deliver(self, encoded_result: bytes) -> None:
        """Complete the call with an encoded result (exactly once)."""
        if self.delivered:
            raise MarshalError("return descriptor used twice")
        self.delivered = True
        self.event.succeed(encoded_result)

    def deliver_error(self, exc: Exception) -> None:
        """Complete the call with a remote exception (exactly once)."""
        if self.delivered:
            raise MarshalError("return descriptor used twice")
        self.delivered = True
        self.event.defused = True  # type: ignore[attr-defined]
        self.event.fail(exc)


class Call:
    """A serialized method invocation."""

    def __init__(self, interface_guid: Guid, method: str,
                 encoded_args: bytes,
                 return_descriptor: Optional[ReturnDescriptor] = None) -> None:
        self.call_id = next(_call_ids)
        self.interface_guid = interface_guid
        self.method = method
        self.encoded_args = encoded_args
        self.return_descriptor = return_descriptor

    @property
    def one_way(self) -> bool:
        """True when no reply is expected (no return descriptor)."""
        return self.return_descriptor is None

    @property
    def size_bytes(self) -> int:
        """Serialized size: header (GUID + method + id) + arguments."""
        return 24 + len(self.method) + len(self.encoded_args)

    def args(self) -> Tuple[Any, ...]:
        """Deserialize the argument tuple."""
        decoded = marshal.decode(self.encoded_args)
        if not isinstance(decoded, list):
            raise MarshalError("call arguments must decode to a list")
        return tuple(decoded)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Call #{self.call_id} {self.interface_guid}.{self.method} "
                f"{self.size_bytes}B>")


def make_call(sim: Simulator, interface: InterfaceSpec, method_name: str,
              args: Tuple[Any, ...]) -> Call:
    """Build a Call against ``interface``, validating the signature.

    This is the "manual invocation scheme" of Section 3.1 — proxies use
    it under the hood for the transparent scheme.
    """
    method: MethodSpec = interface.method(method_name)
    if len(args) != method.arity:
        raise InterfaceError(
            f"{interface.name}.{method_name} takes {method.arity} "
            f"argument(s), got {len(args)}")
    encoded = marshal.encode(list(args))
    descriptor = None if method.one_way else ReturnDescriptor(sim)
    return Call(interface_guid=interface.guid, method=method_name,
                encoded_args=encoded, return_descriptor=descriptor)
