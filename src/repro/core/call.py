"""Call objects — the unit of inter-Offcode invocation.

"All interface methods return a Call object that contains the relevant
method information including the serialized input parameters.  Once a
Call object is obtained, it can be sent to a target device (or several
devices) by using a connected channel" (Section 3.1).

A Call carries the target interface GUID, the method name, the encoded
arguments, and (for two-way methods) a *return descriptor* the callee
uses to deliver the result — in the simulation the descriptor is a
pending event on the caller's simulator, mirroring the paper's
"embedded return descriptor [used] to DMA the return value back".
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import (ChannelError, InterfaceError, MarshalError,
                          OffloadTimeoutError)
from repro.core.guid import Guid
from repro.core.interfaces import InterfaceSpec, MethodSpec
from repro.core import marshal
from repro.sim.engine import Event, Simulator

__all__ = ["BatchEntry", "Call", "CallBatch", "CallPolicy",
           "ReturnDescriptor", "make_call"]


@dataclass(frozen=True)
class CallPolicy:
    """Deadline and retry parameters for proxy invocations.

    A proxy with a policy bounds every attempt by ``deadline_ns`` and
    retries up to ``max_attempts`` times with exponential backoff
    (``backoff_base_ns * backoff_factor**(attempt-1)``), jittered by
    ``jitter_frac`` using the supplied simulation RNG stream — never
    wall-clock randomness, so runs replay deterministically.
    """

    deadline_ns: int = 1_000_000
    max_attempts: int = 3
    backoff_base_ns: int = 200_000
    backoff_factor: float = 2.0
    jitter_frac: float = 0.1
    rng: Optional[random.Random] = None

    def __post_init__(self) -> None:
        if self.deadline_ns <= 0:
            raise ChannelError(
                f"deadline_ns must be positive: {self.deadline_ns}")
        if self.max_attempts <= 0:
            raise ChannelError(
                f"max_attempts must be positive: {self.max_attempts}")
        if not 0 <= self.jitter_frac < 1:
            raise ChannelError(
                f"jitter_frac must be in [0, 1): {self.jitter_frac}")

    def backoff_ns(self, attempt: int) -> int:
        """Backoff delay after the ``attempt``-th (1-based) timeout."""
        delay = self.backoff_base_ns * (
            self.backoff_factor ** max(0, attempt - 1))
        if self.rng is not None and self.jitter_frac > 0:
            delay *= 1.0 + self.rng.uniform(-self.jitter_frac,
                                            self.jitter_frac)
        return max(1, round(delay))

_call_ids = itertools.count(1)


class ReturnDescriptor:
    """Where the return value of a two-way Call should be delivered."""

    def __init__(self, sim: Simulator) -> None:
        self.event: Event = sim.event()
        self.delivered = False

    def deliver(self, encoded_result: bytes) -> None:
        """Complete the call with an encoded result (exactly once)."""
        if self.delivered:
            raise MarshalError("return descriptor used twice")
        self.delivered = True
        self.event.succeed(encoded_result)

    def deliver_error(self, exc: Exception) -> None:
        """Complete the call with a remote exception (exactly once)."""
        if self.delivered:
            raise MarshalError("return descriptor used twice")
        self.delivered = True
        self.event.defused = True  # type: ignore[attr-defined]
        self.event.fail(exc)


class Call:
    """A serialized method invocation."""

    def __init__(self, interface_guid: Guid, method: str,
                 encoded_args: bytes,
                 return_descriptor: Optional[ReturnDescriptor] = None) -> None:
        self.call_id = next(_call_ids)
        self.interface_guid = interface_guid
        self.method = method
        self.encoded_args = encoded_args
        self.return_descriptor = return_descriptor
        # Serialized size: header (GUID + method + id) + arguments.
        # Cached at construction — the arguments are already encoded and
        # immutable, and channels/batchers consult the size repeatedly.
        self.size_bytes = 24 + len(method) + len(encoded_args)
        # Telemetry span context (repro.telemetry.SpanContext) stamped by
        # the proxy so downstream layers — channel, batcher, bus, device
        # dispatch — parent their spans under the invocation's trace.
        # None when telemetry is off; never serialized on the wire.
        self.trace_ctx = None

    @property
    def one_way(self) -> bool:
        """True when no reply is expected (no return descriptor)."""
        return self.return_descriptor is None

    def reissue(self, sim: Simulator) -> "Call":
        """A fresh Call reusing this one's encoded argument bytes.

        Return descriptors are one-shot, so a retried two-way call needs
        a new Call object — but its arguments are already marshaled and
        must not be encoded again (the caller paid that cost once).  The
        reissued call gets a new id and, for two-way calls, a fresh
        descriptor.
        """
        descriptor = None if self.one_way else ReturnDescriptor(sim)
        call = Call(interface_guid=self.interface_guid, method=self.method,
                    encoded_args=self.encoded_args,
                    return_descriptor=descriptor)
        call.trace_ctx = self.trace_ctx
        return call

    def args(self) -> Tuple[Any, ...]:
        """Deserialize the argument tuple."""
        decoded = marshal.decode(self.encoded_args)
        if not isinstance(decoded, list):
            raise MarshalError("call arguments must decode to a list")
        return tuple(decoded)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Call #{self.call_id} {self.interface_guid}.{self.method} "
                f"{self.size_bytes}B>")


@dataclass
class BatchEntry:
    """One payload riding in a :class:`CallBatch`.

    ``enqueued_at_ns`` is the coalescing timestamp — delivery latency is
    measured from here, so queueing inside the batcher is charged to the
    message, not hidden.  ``deadline_at_ns`` (optional) bounds how long
    the entry may wait across batch retries; the batcher drops entries
    whose deadline has passed before re-sending the batch.
    """

    payload: Any
    size_bytes: int
    enqueued_at_ns: int
    deadline_at_ns: Optional[int] = None

    def expired(self, now_ns: int) -> bool:
        """True once the entry's deadline (if any) has passed."""
        return (self.deadline_at_ns is not None
                and now_ns > self.deadline_at_ns)


class CallBatch:
    """An aggregate of one-way payloads bound for one destination set.

    The vectored-dispatch unit: the Channel Executive coalesces one-way
    :class:`Call`s (and raw data-plane payloads) per (channel,
    destination site) and the provider moves the whole batch as a single
    scatter-gather bus transaction.  Per-message headers amortize into
    one batch header plus a small per-entry descriptor, mirroring the
    descriptor-chaining DMA engines of the paper's NIC.

    Only *one-way* Calls may join a batch: a two-way Call carries a
    return descriptor the caller is already blocked on, and delaying it
    behind a watermark would trade its latency for someone else's
    throughput.
    """

    HEADER_BYTES = 32          # one batch header on the wire
    PER_ENTRY_BYTES = 8        # chained-descriptor overhead per entry

    def __init__(self) -> None:
        self.entries: List[BatchEntry] = []

    def add(self, payload: Any, size_bytes: int, now_ns: int,
            deadline_at_ns: Optional[int] = None) -> BatchEntry:
        """Append one payload; one-way Calls only (ChannelError otherwise)."""
        if isinstance(payload, Call) and not payload.one_way:
            raise ChannelError(
                f"two-way call {payload.method!r} cannot join a batch; "
                "its caller is blocked on the reply")
        if size_bytes < 0:
            raise ChannelError(f"negative batch entry size: {size_bytes}")
        entry = BatchEntry(payload=payload, size_bytes=size_bytes,
                           enqueued_at_ns=now_ns,
                           deadline_at_ns=deadline_at_ns)
        self.entries.append(entry)
        return entry

    def drop_expired(self, now_ns: int) -> List[BatchEntry]:
        """Remove and return entries whose deadline has passed.

        A dropped entry's waiter (a Call carrying an undelivered return
        descriptor — defensive: :meth:`add` rejects two-way Calls, but a
        descriptor-bearing payload must never be silently discarded)
        gets a deadline exception so no caller hangs forever on a
        message that quietly left the batch.
        """
        expired = [e for e in self.entries if e.expired(now_ns)]
        if expired:
            self.entries = [e for e in self.entries
                            if not e.expired(now_ns)]
            for entry in expired:
                descriptor = getattr(entry.payload, "return_descriptor",
                                     None)
                if descriptor is not None and not descriptor.delivered:
                    descriptor.deliver_error(OffloadTimeoutError(
                        f"batched call expired after waiting "
                        f"{now_ns - entry.enqueued_at_ns} ns "
                        "(deadline passed before flush)"))
        return expired

    @property
    def count(self) -> int:
        """Number of entries currently in the batch."""
        return len(self.entries)

    @property
    def payload_bytes(self) -> int:
        """Sum of the entry payload sizes (no batching overhead)."""
        return sum(e.size_bytes for e in self.entries)

    @property
    def size_bytes(self) -> int:
        """On-the-wire size: batch header + per-entry descriptors + data."""
        return (self.HEADER_BYTES + self.PER_ENTRY_BYTES * self.count
                + self.payload_bytes)

    @property
    def oldest_enqueued_at_ns(self) -> Optional[int]:
        """Enqueue time of the oldest entry (None when empty)."""
        if not self.entries:
            return None
        return min(e.enqueued_at_ns for e in self.entries)

    def entry_sizes(self) -> List[int]:
        """The scatter-gather size list the DMA engine chains."""
        return [max(1, e.size_bytes) for e in self.entries]

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[BatchEntry]:
        return iter(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CallBatch n={self.count} {self.size_bytes}B>"


def make_call(sim: Simulator, interface: InterfaceSpec, method_name: str,
              args: Tuple[Any, ...]) -> Call:
    """Build a Call against ``interface``, validating the signature.

    This is the "manual invocation scheme" of Section 3.1 — proxies use
    it under the hood for the transparent scheme.
    """
    method: MethodSpec = interface.method(method_name)
    if len(args) != method.arity:
        raise InterfaceError(
            f"{interface.name}.{method_name} takes {method.arity} "
            f"argument(s), got {len(args)}")
    encoded = marshal.encode(list(args))
    descriptor = None if method.one_way else ReturnDescriptor(sim)
    return Call(interface_guid=interface.guid, method=method_name,
                encoded_args=encoded, return_descriptor=descriptor)
