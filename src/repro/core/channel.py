"""Channels — the communication abstraction between Offcodes.

"Offcodes communicate with each other and with the host application by
communication channels.  Channels are bidirectional pathways that can be
connected between two endpoints, or connectionless when only attached to
one endpoint" (Section 3.2).

A channel's behaviour is the product of its configuration:

* **type** — ``UNICAST`` (exactly two endpoints) or ``MULTICAST``
  (a sender plus any number of receivers; hardware multicast sends one
  bus transaction when available);
* **reliability** — ``RELIABLE`` channels block the writer when the
  receive ring is full ("careful not to drop messages even though buffer
  descriptors are not available"); ``UNRELIABLE`` ones drop and count;
* **sync** — ``SYNC_SEQUENTIAL`` serializes messages in flight (strict
  FIFO end-to-end); ``SYNC_NONE`` lets transfers overlap;
* **buffering** — ``DIRECT_READ``/``DIRECT_WRITE`` request the zero-copy
  data path; the copying flags request bounce-buffer semantics.

The transfer cost itself comes from the channel's *provider*
(:mod:`repro.core.providers`), chosen by the Channel Executive.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, fields
from typing import Any, Callable, Generator, List, Optional

from repro.errors import ChannelClosedError, ChannelError
from repro.core.call import Call, CallBatch
from repro.core.sites import ExecutionSite
from repro.sim.engine import Event
from repro.sim.resources import Resource, Store
from repro.sim.trace import emit as trace_emit

__all__ = ["ChannelKind", "Reliability", "SyncMode", "Buffering",
           "BatchConfig", "ChannelConfig", "ChannelStats",
           "CorruptedPayload", "Message", "Endpoint", "Channel"]


class ChannelKind(enum.Enum):
    UNICAST = "unicast"
    MULTICAST = "multicast"


class Reliability(enum.Enum):
    RELIABLE = "reliable"
    UNRELIABLE = "unreliable"


class SyncMode(enum.Enum):
    SEQUENTIAL = "sequential"
    NONE = "none"


class Buffering(enum.Enum):
    DIRECT = "direct"        # zero-copy (DIRECT_READ | DIRECT_WRITE)
    COPY = "copy"


@dataclass(frozen=True)
class BatchConfig:
    """Coalescing watermarks for a batched channel.

    A flush happens at whichever watermark trips first: the pending
    batch reaches ``max_bytes`` of payload, collects ``max_calls``
    entries, or its oldest entry has waited ``deadline_ns``.  With
    ``adaptive`` set (the default) the Channel Executive bypasses
    coalescing entirely while traffic is too sparse to fill a batch
    inside the deadline — a paced media stream keeps its per-message
    latency, and batching engages only under load.
    """

    max_bytes: int = 16 * 1024
    max_calls: int = 32
    deadline_ns: int = 500_000          # 0.5 ms
    adaptive: bool = True

    def __post_init__(self) -> None:
        if self.max_bytes <= 0:
            raise ChannelError(
                f"batch max_bytes must be positive: {self.max_bytes}")
        if self.max_calls <= 0:
            raise ChannelError(
                f"batch max_calls must be positive: {self.max_calls}")
        if self.deadline_ns <= 0:
            raise ChannelError(
                f"batch deadline_ns must be positive: {self.deadline_ns}")


# Deprecation shim plumbing: the fluent builder and internal copy-on-write
# helpers construct configs with this flag raised so only *user* code that
# still passes raw enum kwargs sees the DeprecationWarning.
_BUILDER_DEPTH = 0

_DEPRECATED_ENUM_KWARGS = ("kind", "reliability", "sync", "buffering")


@dataclass(frozen=True, init=False)
class ChannelConfig:
    """The ``ChannelConfig`` structure of Figure 3, as a fluent builder.

    The blessed construction style reads as a sentence::

        ChannelConfig.unicast().reliable().zero_copy().batched(
            max_bytes=16 * 1024)

    Every fluent step returns a new frozen config, so partial configs
    can be shared and specialized freely.  The legacy constructor
    keyword style (``ChannelConfig(kind=ChannelKind.UNICAST, ...)``)
    still works but emits a single :class:`DeprecationWarning` per call;
    it will be removed once nothing ships it.
    """

    kind: ChannelKind = ChannelKind.UNICAST
    reliability: Reliability = Reliability.RELIABLE
    sync: SyncMode = SyncMode.SEQUENTIAL
    buffering: Buffering = Buffering.DIRECT
    ring_slots: int = 64
    priority: int = 1               # 0 = low priority (the OOB class)
    target_device: Optional[str] = None
    # Application tag carried in the channel-availability notification;
    # Offcodes use it to recognise which of their channels is which.
    label: str = ""
    # Coalescing watermarks; None = unbatched (the default).
    batch: Optional[BatchConfig] = None

    def __init__(self, kind: ChannelKind = ChannelKind.UNICAST,
                 reliability: Reliability = Reliability.RELIABLE,
                 sync: SyncMode = SyncMode.SEQUENTIAL,
                 buffering: Buffering = Buffering.DIRECT,
                 ring_slots: int = 64, priority: int = 1,
                 target_device: Optional[str] = None, label: str = "",
                 batch: Optional[BatchConfig] = None) -> None:
        """Build a config; prefer the fluent classmethods over raw kwargs."""
        if _BUILDER_DEPTH == 0:
            explicit = [name for name, value, default in (
                ("kind", kind, ChannelKind.UNICAST),
                ("reliability", reliability, Reliability.RELIABLE),
                ("sync", sync, SyncMode.SEQUENTIAL),
                ("buffering", buffering, Buffering.DIRECT),
            ) if value is not default]
            if explicit:
                warnings.warn(
                    "raw ChannelConfig enum kwargs "
                    f"({', '.join(explicit)}) are deprecated; use the "
                    "fluent builder, e.g. ChannelConfig.unicast()"
                    ".reliable().zero_copy()",
                    DeprecationWarning, stacklevel=2)
        if ring_slots <= 0:
            raise ChannelError(f"ring_slots must be positive: {ring_slots}")
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "reliability", reliability)
        object.__setattr__(self, "sync", sync)
        object.__setattr__(self, "buffering", buffering)
        object.__setattr__(self, "ring_slots", ring_slots)
        object.__setattr__(self, "priority", priority)
        object.__setattr__(self, "target_device", target_device)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "batch", batch)

    # -- internal copy-on-write (never warns) ---------------------------------------

    def _evolve(self, **changes: Any) -> "ChannelConfig":
        global _BUILDER_DEPTH
        current = {f.name: getattr(self, f.name) for f in fields(self)}
        current.update(changes)
        _BUILDER_DEPTH += 1
        try:
            return ChannelConfig(**current)
        finally:
            _BUILDER_DEPTH -= 1

    # -- fluent entry points ---------------------------------------------------------

    @classmethod
    def unicast(cls) -> "ChannelConfig":
        """Start a fluent config for a two-endpoint channel."""
        global _BUILDER_DEPTH
        _BUILDER_DEPTH += 1
        try:
            return cls()
        finally:
            _BUILDER_DEPTH -= 1

    @classmethod
    def multicast(cls) -> "ChannelConfig":
        """Start a fluent config for a one-sender/many-receivers channel."""
        return cls.unicast()._evolve(kind=ChannelKind.MULTICAST)

    # -- fluent refinements ------------------------------------------------------------

    def reliable(self) -> "ChannelConfig":
        """Blocking-writer semantics: no message is ever dropped."""
        return self._evolve(reliability=Reliability.RELIABLE)

    def unreliable(self) -> "ChannelConfig":
        """Drop-on-full semantics (and the only home for fault filters)."""
        return self._evolve(reliability=Reliability.UNRELIABLE)

    def sequential(self) -> "ChannelConfig":
        """Strict FIFO end-to-end: one message in flight at a time."""
        return self._evolve(sync=SyncMode.SEQUENTIAL)

    def unordered(self) -> "ChannelConfig":
        """Let transfers overlap (no end-to-end serialization)."""
        return self._evolve(sync=SyncMode.NONE)

    def zero_copy(self) -> "ChannelConfig":
        """Request the DIRECT (pinned-buffer, zero-copy) data path."""
        return self._evolve(buffering=Buffering.DIRECT)

    def copied(self) -> "ChannelConfig":
        """Request bounce-buffer (copying) semantics."""
        return self._evolve(buffering=Buffering.COPY)

    def batched(self, max_bytes: Optional[int] = None,
                max_calls: Optional[int] = None,
                deadline_ns: Optional[int] = None,
                adaptive: Optional[bool] = None) -> "ChannelConfig":
        """Enable vectored coalescing with the given watermarks.

        Omitted knobs take the :class:`BatchConfig` defaults; calling
        ``batched()`` on an already-batched config refines the existing
        watermarks.
        """
        base = self.batch or BatchConfig()
        batch = BatchConfig(
            max_bytes=base.max_bytes if max_bytes is None else max_bytes,
            max_calls=base.max_calls if max_calls is None else max_calls,
            deadline_ns=(base.deadline_ns if deadline_ns is None
                         else deadline_ns),
            adaptive=base.adaptive if adaptive is None else adaptive)
        return self._evolve(batch=batch)

    def unbatched(self) -> "ChannelConfig":
        """Disable coalescing (every message is its own transaction)."""
        return self._evolve(batch=None)

    def with_ring_slots(self, slots: int) -> "ChannelConfig":
        """Set the receive-ring depth."""
        return self._evolve(ring_slots=slots)

    def with_priority(self, priority: int) -> "ChannelConfig":
        """Set the delivery priority (0 = the low-priority OOB class)."""
        return self._evolve(priority=priority)

    def labeled(self, label: str) -> "ChannelConfig":
        """Set the application tag carried in availability notices."""
        return self._evolve(label=label)

    def with_target(self, device: Optional[str]) -> "ChannelConfig":
        """Copy of this config with ``target_device`` set (Figure 3)."""
        return self._evolve(target_device=device)


@dataclass(frozen=True)
class ChannelStats:
    """Aggregate delivery accounting for one channel.

    Snapshot produced by :meth:`Channel.stats`; chaos tests use it to
    assert loss bookkeeping (``sent == delivered + dropped`` on a quiet
    channel, ``corrupted`` counts messages delivered with a
    :class:`CorruptedPayload` wrapper).
    """

    channel_id: int
    label: str
    sent: int
    delivered: int
    dropped: int
    corrupted: int
    bytes: int
    batches: int = 0


class CorruptedPayload:
    """Wrapper marking a payload mangled in flight by fault injection.

    Receivers on ``UNRELIABLE`` channels must treat a message whose
    payload is a :class:`CorruptedPayload` as a checksum failure: the
    ``original`` attribute is retained only for test introspection.
    """

    def __init__(self, original: Any) -> None:
        self.original = original

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CorruptedPayload {self.original!r}>"


class Message:
    """One payload moving through a channel.

    A plain ``__slots__`` class rather than a dataclass: every packet of
    every stream allocates one, so construction cost and per-instance
    footprint are on the simulator's hot path.
    """

    __slots__ = ("payload", "size_bytes", "sent_at_ns", "source")

    def __init__(self, payload: Any, size_bytes: int, sent_at_ns: int,
                 source: str) -> None:
        if size_bytes < 0:
            raise ChannelError(f"negative message size: {size_bytes}")
        self.payload = payload
        self.size_bytes = size_bytes
        self.sent_at_ns = sent_at_ns
        self.source = source           # site name of the writer

    def __repr__(self) -> str:
        return (f"Message(payload={self.payload!r}, "
                f"size_bytes={self.size_bytes}, "
                f"sent_at_ns={self.sent_at_ns}, source={self.source!r})")

    @property
    def is_call(self) -> bool:
        """True when the payload is a :class:`Call` (dispatched, not queued)."""
        return isinstance(self.payload, Call)


class Endpoint:
    """One side of a channel, bound to an execution site."""

    def __init__(self, channel: "Channel", site: ExecutionSite) -> None:
        self.channel = channel
        self.site = site
        drop = channel.config.reliability is Reliability.UNRELIABLE
        self.rx: Store = Store(site.sim, capacity=channel.config.ring_slots,
                               drop_when_full=drop)
        self._handler: Optional[Callable[[Message], Any]] = None
        self.bound_offcode = None    # set when an Offcode owns this endpoint
        self.messages_in = 0
        self.messages_out = 0

    # -- the channel API of Section 3.2 --------------------------------------------

    def write(self, payload: Any, size_bytes: int
              ) -> Generator[Event, None, None]:
        """Send ``payload`` to every other endpoint of the channel.

        On a batched channel the payload may be coalesced by the Channel
        Executive's batcher and ride a later vectored transaction; the
        write completes when the payload is safely enqueued (or, on
        flush, when the whole batch has moved).
        """
        batcher = self.channel.batcher
        if batcher is not None:
            coalesced = yield from batcher.offer(self, payload, size_bytes)
            if coalesced:
                return
        yield from self.channel._write_from(self, payload, size_bytes)

    def read(self) -> Generator[Event, None, Message]:
        """Block until a message arrives (FIFO)."""
        self.channel._check_open()
        message: Message = yield self.rx.get()
        return message

    def poll(self) -> bool:
        """True if :meth:`read` would not block."""
        return len(self.rx) > 0

    def install_call_handler(self, handler: Callable[[Message], Any]) -> None:
        """Install a dispatch handler "invoked each time the channel has
        a new request", instead of polling (Figure 3)."""
        if self._handler is not None:
            raise ChannelError("endpoint already has a call handler")
        self._handler = handler

    # -- delivery ----------------------------------------------------------------------

    def _deliver(self, message: Message) -> Generator[Event, None, None]:
        self.messages_in += 1
        if message.is_call and self.bound_offcode is not None:
            yield from self._dispatch_call(message)
            return
        if self._handler is not None:
            result = self._handler(message)
            if hasattr(result, "send") and hasattr(result, "throw"):
                yield from result
            return
        yield self.rx.put(message)

    def _dispatch_call(self, message: Message
                       ) -> Generator[Event, None, None]:
        """Run a Call on the bound Offcode and ship its reply back.

        "The Offcode uses the embedded return descriptor to DMA the
        return value back to the application" (Section 4.1): the reply
        travels the channel in reverse, paying the provider's cost,
        before the caller's descriptor fires.
        """
        from repro.core.call import ReturnDescriptor  # cycle-free import
        call = message.payload
        original = call.return_descriptor
        if original is None:
            yield from self.bound_offcode.dispatch(call)
            return
        local = ReturnDescriptor(self.site.sim)
        call.return_descriptor = local
        yield from self.bound_offcode.dispatch(call)
        if not local.event.triggered:
            raise ChannelError(
                f"dispatch of {call.method} returned without delivering "
                "a result")
        # Reverse transfer: result header + encoded payload.
        source_endpoint = next(
            (e for e in self.channel.endpoints
             if e.site.name == message.source), None)
        if source_endpoint is not None and source_endpoint is not self:
            reply_size = 24 + (len(local.event._value)
                               if local.event.ok else 32)
            yield from self.channel.provider.transfer(
                self.channel, self, [source_endpoint], reply_size)
        call.return_descriptor = original
        if local.event.ok:
            original.deliver(local.event._value)
        else:
            original.deliver_error(local.event._value)


class Channel:
    """A configured pathway between two or more endpoints.

    Channels are produced by the Channel Executive; user code receives
    the creator-side :class:`Endpoint` and calls ``ConnectOffcode``-style
    attachment through the executive (which builds the remote endpoint
    and notifies the Offcode over its OOB channel).
    """

    def __init__(self, config: ChannelConfig, provider,
                 creator_site: ExecutionSite, channel_id: int) -> None:
        self.config = config
        self.provider = provider
        self.channel_id = channel_id
        self.endpoints: List[Endpoint] = [Endpoint(self, creator_site)]
        self.closed = False
        self.messages_sent = 0
        self.bytes_sent = 0
        self.drops = 0
        self.delivered = 0
        self.corrupted = 0
        self.batches_sent = 0
        # Adaptive coalescer, attached by the Channel Executive when the
        # config carries a BatchConfig (None = classic per-message path).
        self.batcher = None
        # Fault-injection hook: payload -> "drop" | "corrupt" | None.
        self._fault_filter: Optional[Callable[[Message], Optional[str]]] = None
        self._sequencer: Optional[Resource] = (
            Resource(creator_site.sim, capacity=1)
            if config.sync is SyncMode.SEQUENTIAL else None)

    # -- topology --------------------------------------------------------------------

    @property
    def creator_endpoint(self) -> Endpoint:
        """The endpoint made at channel creation (Figure 3, step 1)."""
        return self.endpoints[0]

    @property
    def connected(self) -> bool:
        """True once a second endpoint exists."""
        return len(self.endpoints) >= 2

    def add_endpoint(self, site: ExecutionSite) -> Endpoint:
        """Construct the far endpoint (done by the executive)."""
        self._check_open()
        if (self.config.kind is ChannelKind.UNICAST
                and len(self.endpoints) >= 2):
            raise ChannelError(
                "unicast channel cannot have more than two endpoints")
        endpoint = Endpoint(self, site)
        self.endpoints.append(endpoint)
        return endpoint

    def endpoint_of(self, offcode) -> Endpoint:
        """The endpoint bound to ``offcode`` (raises if absent)."""
        for endpoint in self.endpoints:
            if endpoint.bound_offcode is offcode:
                return endpoint
        raise ChannelError(
            f"channel #{self.channel_id} has no endpoint bound to "
            f"{getattr(offcode, 'bindname', offcode)!r}")

    def close(self) -> None:
        """Mark the channel closed; further operations raise."""
        self.closed = True

    # -- fault injection & accounting ---------------------------------------------------

    def set_fault_filter(
            self, fault_filter: Optional[Callable[[Message], Optional[str]]]
    ) -> None:
        """Install (or clear) a message-fault filter.

        The filter sees each message after the transfer cost is paid and
        returns ``"drop"`` (the message vanishes), ``"corrupt"`` (it is
        delivered wrapped in :class:`CorruptedPayload`) or ``None``
        (untouched).  Only ``UNRELIABLE`` channels accept one — reliable
        channels promise delivery, so injecting loss there would model a
        contract violation rather than a lossy medium.
        """
        if (fault_filter is not None
                and self.config.reliability is not Reliability.UNRELIABLE):
            raise ChannelError(
                f"channel #{self.channel_id} is RELIABLE; fault filters "
                "apply only to UNRELIABLE channels")
        self._fault_filter = fault_filter

    def stats(self) -> ChannelStats:
        """Current :class:`ChannelStats` snapshot for this channel."""
        return ChannelStats(
            channel_id=self.channel_id, label=self.config.label,
            sent=self.messages_sent, delivered=self.delivered,
            dropped=self.drops, corrupted=self.corrupted,
            bytes=self.bytes_sent, batches=self.batches_sent)

    def _check_open(self) -> None:
        if self.closed:
            raise ChannelClosedError(
                f"channel #{self.channel_id} is closed")

    # -- data movement -----------------------------------------------------------------

    def _write_from(self, source: Endpoint, payload: Any, size_bytes: int
                    ) -> Generator[Event, None, None]:
        self._check_open()
        if not self.connected:
            raise ChannelError(
                f"channel #{self.channel_id} has no remote endpoint")
        destinations = [e for e in self.endpoints if e is not source]
        message = Message(payload=payload, size_bytes=size_bytes,
                          sent_at_ns=source.site.sim.now,
                          source=source.site.name)
        if self._sequencer is not None:
            yield self._sequencer.request()
        try:
            yield from self.provider.transfer(self, source, destinations,
                                              size_bytes)
        finally:
            if self._sequencer is not None:
                self._sequencer.release()
        source.messages_out += 1
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        trace_emit(source.site.sim, "channel",
                   f"#{self.channel_id} {source.site.name} -> "
                   f"{','.join(d.site.name for d in destinations)}",
                   bytes=size_bytes, call=message.is_call)
        if self._fault_filter is not None:
            verdict = self._fault_filter(message)
            if verdict == "drop":
                # Lost on the wire *after* occupying it: cost paid, no data.
                self.drops += 1
                trace_emit(source.site.sim, "fault",
                           f"#{self.channel_id} message dropped in flight",
                           channel=self.channel_id, label=self.config.label)
                return
            if verdict == "corrupt":
                self.corrupted += 1
                trace_emit(source.site.sim, "fault",
                           f"#{self.channel_id} message corrupted in flight",
                           channel=self.channel_id, label=self.config.label)
                message = Message(payload=CorruptedPayload(message.payload),
                                  size_bytes=message.size_bytes,
                                  sent_at_ns=message.sent_at_ns,
                                  source=message.source)
        for destination in destinations:
            dropped_before = destination.rx.dropped
            yield from destination._deliver(message)
            delta = destination.rx.dropped - dropped_before
            if delta > 0:
                self.drops += delta
            else:
                self.delivered += 1

    def send_vectored(self, source: Endpoint, batch: CallBatch
                      ) -> Generator[Event, None, None]:
        """Move a whole :class:`CallBatch` as one vectored transaction.

        The provider pays a *single* scatter-gather transfer for the
        batch (one bus transaction on scatter-gather hardware) instead
        of one per entry; each entry is then delivered as its own
        :class:`Message`, stamped with its original enqueue time so
        latency accounting includes the coalescing wait.
        """
        self._check_open()
        if batch.count == 0:
            return
        if not self.connected:
            raise ChannelError(
                f"channel #{self.channel_id} has no remote endpoint")
        destinations = [e for e in self.endpoints if e is not source]
        if self._sequencer is not None:
            yield self._sequencer.request()
        try:
            yield from self.provider.transfer_vectored(
                self, source, destinations, batch)
        finally:
            if self._sequencer is not None:
                self._sequencer.release()
        source.messages_out += batch.count
        self.messages_sent += batch.count
        self.batches_sent += 1
        self.bytes_sent += batch.size_bytes
        trace_emit(source.site.sim, "channel",
                   f"#{self.channel_id} {source.site.name} => "
                   f"{','.join(d.site.name for d in destinations)} "
                   f"[batch n={batch.count}]",
                   bytes=batch.size_bytes, batch=batch.count)
        for entry in batch:
            message = Message(payload=entry.payload,
                              size_bytes=entry.size_bytes,
                              sent_at_ns=entry.enqueued_at_ns,
                              source=source.site.name)
            if self._fault_filter is not None:
                verdict = self._fault_filter(message)
                if verdict == "drop":
                    self.drops += 1
                    trace_emit(source.site.sim, "fault",
                               f"#{self.channel_id} batched message "
                               "dropped in flight",
                               channel=self.channel_id,
                               label=self.config.label)
                    continue
                if verdict == "corrupt":
                    self.corrupted += 1
                    message = Message(
                        payload=CorruptedPayload(message.payload),
                        size_bytes=message.size_bytes,
                        sent_at_ns=message.sent_at_ns,
                        source=message.source)
            for destination in destinations:
                dropped_before = destination.rx.dropped
                yield from destination._deliver(message)
                delta = destination.rx.dropped - dropped_before
                if delta > 0:
                    self.drops += delta
                else:
                    self.delivered += 1

    # -- call convenience ------------------------------------------------------------------

    def send_call(self, source: Endpoint, call: Call
                  ) -> Generator[Event, None, Any]:
        """Send a Call and (for two-way methods) await its return value.

        One-way Calls on a batched channel may be coalesced into a
        vectored transaction by the Channel Executive's batcher; two-way
        Calls always take the direct path (the caller is blocked on the
        reply).  Returns the *encoded* result; proxies decode it against
        the interface spec.
        """
        if call.one_way and self.batcher is not None:
            coalesced = yield from self.batcher.offer(source, call,
                                                      call.size_bytes)
            if coalesced:
                return None
        yield from self._write_from(source, call, call.size_bytes)
        if call.return_descriptor is None:
            return None
        encoded = yield call.return_descriptor.event
        return encoded

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = self.config.kind.value
        return (f"<Channel #{self.channel_id} {kind} "
                f"provider={getattr(self.provider, 'name', '?')} "
                f"endpoints={len(self.endpoints)}>")
