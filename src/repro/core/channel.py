"""Channels — the communication abstraction between Offcodes.

"Offcodes communicate with each other and with the host application by
communication channels.  Channels are bidirectional pathways that can be
connected between two endpoints, or connectionless when only attached to
one endpoint" (Section 3.2).

A channel's behaviour is the product of its configuration:

* **type** — ``UNICAST`` (exactly two endpoints) or ``MULTICAST``
  (a sender plus any number of receivers; hardware multicast sends one
  bus transaction when available);
* **reliability** — ``RELIABLE`` channels block the writer when the
  receive ring is full ("careful not to drop messages even though buffer
  descriptors are not available"); ``UNRELIABLE`` ones drop and count;
* **sync** — ``SYNC_SEQUENTIAL`` serializes messages in flight (strict
  FIFO end-to-end); ``SYNC_NONE`` lets transfers overlap;
* **buffering** — ``DIRECT_READ``/``DIRECT_WRITE`` request the zero-copy
  data path; the copying flags request bounce-buffer semantics.

The transfer cost itself comes from the channel's *provider*
(:mod:`repro.core.providers`), chosen by the Channel Executive.
"""

from __future__ import annotations

import enum
import random
import warnings
from dataclasses import dataclass, fields
from typing import Any, Callable, Generator, List, Optional

from repro.errors import (AdmissionShedError, ChannelClosedError,
                          ChannelError)
from repro.core.call import Call, CallBatch
from repro.core.sites import ExecutionSite
from repro.sim.engine import Event
from repro.sim.resources import Resource, Store
from repro.sim.trace import emit as trace_emit

__all__ = ["ChannelKind", "Reliability", "SyncMode", "Buffering",
           "BatchConfig", "ChannelConfig", "ChannelStats",
           "CorruptedPayload", "Message", "SequencedMessage",
           "RetransmitConfig", "Endpoint", "Channel"]


class ChannelKind(enum.Enum):
    UNICAST = "unicast"
    MULTICAST = "multicast"


class Reliability(enum.Enum):
    RELIABLE = "reliable"
    UNRELIABLE = "unreliable"


class SyncMode(enum.Enum):
    SEQUENTIAL = "sequential"
    NONE = "none"


class Buffering(enum.Enum):
    DIRECT = "direct"        # zero-copy (DIRECT_READ | DIRECT_WRITE)
    COPY = "copy"


@dataclass(frozen=True)
class BatchConfig:
    """Coalescing watermarks for a batched channel.

    A flush happens at whichever watermark trips first: the pending
    batch reaches ``max_bytes`` of payload, collects ``max_calls``
    entries, or its oldest entry has waited ``deadline_ns``.  With
    ``adaptive`` set (the default) the Channel Executive bypasses
    coalescing entirely while traffic is too sparse to fill a batch
    inside the deadline — a paced media stream keeps its per-message
    latency, and batching engages only under load.
    """

    max_bytes: int = 16 * 1024
    max_calls: int = 32
    deadline_ns: int = 500_000          # 0.5 ms
    adaptive: bool = True

    def __post_init__(self) -> None:
        if self.max_bytes <= 0:
            raise ChannelError(
                f"batch max_bytes must be positive: {self.max_bytes}")
        if self.max_calls <= 0:
            raise ChannelError(
                f"batch max_calls must be positive: {self.max_calls}")
        if self.deadline_ns <= 0:
            raise ChannelError(
                f"batch deadline_ns must be positive: {self.deadline_ns}")


# Deprecation shim plumbing: the fluent builder and internal copy-on-write
# helpers construct configs with this flag raised so only *user* code that
# still passes raw enum kwargs sees the DeprecationWarning.
_BUILDER_DEPTH = 0

_DEPRECATED_ENUM_KWARGS = ("kind", "reliability", "sync", "buffering")


@dataclass(frozen=True, init=False)
class ChannelConfig:
    """The ``ChannelConfig`` structure of Figure 3, as a fluent builder.

    The blessed construction style reads as a sentence::

        ChannelConfig.unicast().reliable().zero_copy().batched(
            max_bytes=16 * 1024)

    Every fluent step returns a new frozen config, so partial configs
    can be shared and specialized freely.  The legacy constructor
    keyword style (``ChannelConfig(kind=ChannelKind.UNICAST, ...)``)
    still works but emits a single :class:`DeprecationWarning` per call;
    it will be removed once nothing ships it.
    """

    kind: ChannelKind = ChannelKind.UNICAST
    reliability: Reliability = Reliability.RELIABLE
    sync: SyncMode = SyncMode.SEQUENTIAL
    buffering: Buffering = Buffering.DIRECT
    ring_slots: int = 64
    priority: int = 1               # 0 = low priority (the OOB class)
    target_device: Optional[str] = None
    # Application tag carried in the channel-availability notification;
    # Offcodes use it to recognise which of their channels is which.
    label: str = ""
    # Coalescing watermarks; None = unbatched (the default).
    batch: Optional[BatchConfig] = None
    # Pin provider selection to one provider by name (None = let the
    # executive rank every capable provider by cost).
    preferred_provider: Optional[str] = None

    def __init__(self, kind: ChannelKind = ChannelKind.UNICAST,
                 reliability: Reliability = Reliability.RELIABLE,
                 sync: SyncMode = SyncMode.SEQUENTIAL,
                 buffering: Buffering = Buffering.DIRECT,
                 ring_slots: int = 64, priority: int = 1,
                 target_device: Optional[str] = None, label: str = "",
                 batch: Optional[BatchConfig] = None,
                 preferred_provider: Optional[str] = None) -> None:
        """Build a config; prefer the fluent classmethods over raw kwargs."""
        if _BUILDER_DEPTH == 0:
            explicit = [name for name, value, default in (
                ("kind", kind, ChannelKind.UNICAST),
                ("reliability", reliability, Reliability.RELIABLE),
                ("sync", sync, SyncMode.SEQUENTIAL),
                ("buffering", buffering, Buffering.DIRECT),
            ) if value is not default]
            if explicit:
                warnings.warn(
                    "raw ChannelConfig enum kwargs "
                    f"({', '.join(explicit)}) are deprecated; use the "
                    "fluent builder, e.g. ChannelConfig.unicast()"
                    ".reliable().zero_copy()",
                    DeprecationWarning, stacklevel=2)
        if ring_slots <= 0:
            raise ChannelError(f"ring_slots must be positive: {ring_slots}")
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "reliability", reliability)
        object.__setattr__(self, "sync", sync)
        object.__setattr__(self, "buffering", buffering)
        object.__setattr__(self, "ring_slots", ring_slots)
        object.__setattr__(self, "priority", priority)
        object.__setattr__(self, "target_device", target_device)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "batch", batch)
        object.__setattr__(self, "preferred_provider", preferred_provider)

    # -- internal copy-on-write (never warns) ---------------------------------------

    def _evolve(self, **changes: Any) -> "ChannelConfig":
        global _BUILDER_DEPTH
        current = {f.name: getattr(self, f.name) for f in fields(self)}
        current.update(changes)
        _BUILDER_DEPTH += 1
        try:
            return ChannelConfig(**current)
        finally:
            _BUILDER_DEPTH -= 1

    # -- fluent entry points ---------------------------------------------------------

    @classmethod
    def unicast(cls) -> "ChannelConfig":
        """Start a fluent config for a two-endpoint channel."""
        global _BUILDER_DEPTH
        _BUILDER_DEPTH += 1
        try:
            return cls()
        finally:
            _BUILDER_DEPTH -= 1

    @classmethod
    def multicast(cls) -> "ChannelConfig":
        """Start a fluent config for a one-sender/many-receivers channel."""
        return cls.unicast()._evolve(kind=ChannelKind.MULTICAST)

    # -- fluent refinements ------------------------------------------------------------

    def reliable(self) -> "ChannelConfig":
        """Blocking-writer semantics: no message is ever dropped."""
        return self._evolve(reliability=Reliability.RELIABLE)

    def unreliable(self) -> "ChannelConfig":
        """Drop-on-full semantics; injected faults surface to receivers."""
        return self._evolve(reliability=Reliability.UNRELIABLE)

    def sequential(self) -> "ChannelConfig":
        """Strict FIFO end-to-end: one message in flight at a time."""
        return self._evolve(sync=SyncMode.SEQUENTIAL)

    def unordered(self) -> "ChannelConfig":
        """Let transfers overlap (no end-to-end serialization)."""
        return self._evolve(sync=SyncMode.NONE)

    def zero_copy(self) -> "ChannelConfig":
        """Request the DIRECT (pinned-buffer, zero-copy) data path."""
        return self._evolve(buffering=Buffering.DIRECT)

    def copied(self) -> "ChannelConfig":
        """Request bounce-buffer (copying) semantics."""
        return self._evolve(buffering=Buffering.COPY)

    def batched(self, max_bytes: Optional[int] = None,
                max_calls: Optional[int] = None,
                deadline_ns: Optional[int] = None,
                adaptive: Optional[bool] = None) -> "ChannelConfig":
        """Enable vectored coalescing with the given watermarks.

        Omitted knobs take the :class:`BatchConfig` defaults; calling
        ``batched()`` on an already-batched config refines the existing
        watermarks.
        """
        base = self.batch or BatchConfig()
        batch = BatchConfig(
            max_bytes=base.max_bytes if max_bytes is None else max_bytes,
            max_calls=base.max_calls if max_calls is None else max_calls,
            deadline_ns=(base.deadline_ns if deadline_ns is None
                         else deadline_ns),
            adaptive=base.adaptive if adaptive is None else adaptive)
        return self._evolve(batch=batch)

    def unbatched(self) -> "ChannelConfig":
        """Disable coalescing (every message is its own transaction)."""
        return self._evolve(batch=None)

    def with_ring_slots(self, slots: int) -> "ChannelConfig":
        """Set the receive-ring depth."""
        return self._evolve(ring_slots=slots)

    def with_priority(self, priority: int) -> "ChannelConfig":
        """Set the delivery priority (0 = the low-priority OOB class)."""
        return self._evolve(priority=priority)

    def labeled(self, label: str) -> "ChannelConfig":
        """Set the application tag carried in availability notices."""
        return self._evolve(label=label)

    def with_target(self, device: Optional[str]) -> "ChannelConfig":
        """Copy of this config with ``target_device`` set (Figure 3)."""
        return self._evolve(target_device=device)

    def via(self, provider: Optional[str]) -> "ChannelConfig":
        """Pin provider selection to ``provider`` (by registered name).

        The executive still checks ``can_serve`` — a pinned provider
        that cannot reach the endpoints raises
        :class:`~repro.errors.ProviderError` instead of silently
        falling back.  ``via(None)`` restores cost-ranked selection.
        """
        return self._evolve(preferred_provider=provider)


@dataclass(frozen=True)
class RetransmitConfig:
    """Ack/retransmit protocol knobs for a noise-armed reliable channel.

    A reliable channel under fault injection earns its delivery guarantee
    with a sliding-window protocol: at most ``window`` messages sit in
    the bounded retransmit buffer (further writers block — backpressure),
    a lost or corrupted frame is retransmitted after ``timeout_ns``
    growing by ``backoff_factor`` per attempt up to ``max_timeout_ns``,
    and after ``max_attempts`` wire attempts the channel declares the
    medium unusable (:class:`~repro.errors.ChannelError`).  Cumulative
    acks ride reverse traffic and cost ``ack_bytes`` on the wire; they
    traverse the same lossy medium, so a lost ack produces a duplicate
    data frame the receiver suppresses (``dup_dropped``).

    ``jitter`` (0..1) blends decorrelated jitter into the backoff: 0
    (the default) keeps the classic deterministic schedule byte-for-byte;
    1 is fully decorrelated (``uniform(base, 3 * previous_delay)``,
    capped).  Any amount breaks the retransmit synchronization of
    channels that lost frames to the same burst — without it every
    victim retries on the same schedule and collides again.  The
    randomness is drawn from the simulation's seeded RNG streams, so
    runs stay reproducible.
    """

    timeout_ns: int = 200_000
    backoff_factor: float = 2.0
    max_timeout_ns: int = 5_000_000
    max_attempts: int = 64
    window: int = 16
    ack_bytes: int = 16
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.timeout_ns <= 0:
            raise ChannelError(
                f"retransmit timeout_ns must be positive: {self.timeout_ns}")
        if self.max_attempts <= 0:
            raise ChannelError(
                f"retransmit max_attempts must be positive: "
                f"{self.max_attempts}")
        if self.window <= 0:
            raise ChannelError(
                f"retransmit window must be positive: {self.window}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ChannelError(
                f"retransmit jitter must be in [0, 1]: {self.jitter}")


@dataclass(frozen=True)
class ChannelStats:
    """Aggregate delivery accounting for one channel.

    Snapshot produced by :meth:`Channel.stats`; chaos tests use it to
    assert loss bookkeeping.  On unreliable channels ``sent ==
    delivered + dropped`` and ``corrupted`` messages are *delivered*
    (wrapped in :class:`CorruptedPayload` — a checksum failure surfaced
    to the receiver).  On a noise-armed reliable channel the identity
    counts wire attempts: every lost, mangled or duplicate frame lands
    in ``dropped`` (``corrupted`` and ``dup_dropped`` are subsets of it)
    and ``delivered`` counts each unique message exactly once, so
    ``sent == delivered + dropped`` still holds while ``retransmits``
    and ``dup_dropped`` expose the protocol work that earned it.
    """

    channel_id: int
    label: str
    sent: int
    delivered: int
    dropped: int
    corrupted: int
    bytes: int
    batches: int = 0
    retransmits: int = 0
    dup_dropped: int = 0


class CorruptedPayload:
    """Wrapper marking a payload mangled in flight by fault injection.

    Receivers on ``UNRELIABLE`` channels must treat a message whose
    payload is a :class:`CorruptedPayload` as a checksum failure: the
    ``original`` attribute is retained only for test introspection.
    """

    def __init__(self, original: Any) -> None:
        self.original = original

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CorruptedPayload {self.original!r}>"


class Message:
    """One payload moving through a channel.

    A plain ``__slots__`` class rather than a dataclass: every packet of
    every stream allocates one, so construction cost and per-instance
    footprint are on the simulator's hot path.
    """

    __slots__ = ("payload", "size_bytes", "sent_at_ns", "source")

    def __init__(self, payload: Any, size_bytes: int, sent_at_ns: int,
                 source: str) -> None:
        if size_bytes < 0:
            raise ChannelError(f"negative message size: {size_bytes}")
        self.payload = payload
        self.size_bytes = size_bytes
        self.sent_at_ns = sent_at_ns
        self.source = source           # site name of the writer

    def __repr__(self) -> str:
        return (f"Message(payload={self.payload!r}, "
                f"size_bytes={self.size_bytes}, "
                f"sent_at_ns={self.sent_at_ns}, source={self.source!r})")

    @property
    def is_call(self) -> bool:
        """True when the payload is a :class:`Call` (dispatched, not queued)."""
        return isinstance(self.payload, Call)


class SequencedMessage(Message):
    """A message carrying the ack/retransmit protocol's sequence number.

    Only noise-armed reliable channels stamp sequence numbers; receivers
    may ignore the extra attribute (it subclasses :class:`Message`), but
    duplicate suppression and cumulative acks key on it.
    """

    __slots__ = ("seq",)

    def __init__(self, payload: Any, size_bytes: int, sent_at_ns: int,
                 source: str, seq: int) -> None:
        super().__init__(payload, size_bytes, sent_at_ns, source)
        self.seq = seq


class _ReliableState:
    """Protocol state for one noise-armed reliable channel.

    The simulation keeps sender and receiver bookkeeping in one place:
    ``next_seq``/``unacked``/``window`` are the sender's sliding window
    and bounded retransmit buffer, ``contiguous``/``seen`` are the
    receiver's cumulative-ack frontier and out-of-order accept set.  A
    multicast channel shares one state because the fault filter draws a
    single verdict per wire attempt — all destinations share fate.
    """

    def __init__(self, channel: "Channel", config: RetransmitConfig) -> None:
        self.config = config
        self.next_seq = 1
        self.window = Resource(channel.creator_endpoint.site.sim,
                               capacity=config.window)
        self.unacked: dict = {}     # seq -> (payload, size_bytes)
        self.contiguous = 0         # highest in-order seq accepted
        self.seen: set = set()      # accepted seqs above the frontier


class Endpoint:
    """One side of a channel, bound to an execution site."""

    def __init__(self, channel: "Channel", site: ExecutionSite) -> None:
        self.channel = channel
        self.site = site
        drop = channel.config.reliability is Reliability.UNRELIABLE
        self.rx: Store = Store(site.sim, capacity=channel.config.ring_slots,
                               drop_when_full=drop)
        self._handler: Optional[Callable[[Message], Any]] = None
        self.bound_offcode = None    # set when an Offcode owns this endpoint
        self.messages_in = 0
        self.messages_out = 0

    # -- the channel API of Section 3.2 --------------------------------------------

    def write(self, payload: Any, size_bytes: int
              ) -> Generator[Event, None, None]:
        """Send ``payload`` to every other endpoint of the channel.

        On a batched channel the payload may be coalesced by the Channel
        Executive's batcher and ride a later vectored transaction; the
        write completes when the payload is safely enqueued (or, on
        flush, when the whole batch has moved).
        """
        batcher = self.channel.batcher
        if batcher is not None:
            coalesced = yield from batcher.offer(self, payload, size_bytes)
            if coalesced:
                return
        yield from self.channel._write_from(self, payload, size_bytes)

    def read(self) -> Generator[Event, None, Message]:
        """Block until a message arrives (FIFO)."""
        self.channel._check_open()
        message: Message = yield self.rx.get()
        return message

    def poll(self) -> bool:
        """True if :meth:`read` would not block."""
        return len(self.rx) > 0

    def install_call_handler(self, handler: Callable[[Message], Any]) -> None:
        """Install a dispatch handler "invoked each time the channel has
        a new request", instead of polling (Figure 3)."""
        if self._handler is not None:
            raise ChannelError("endpoint already has a call handler")
        self._handler = handler

    # -- delivery ----------------------------------------------------------------------

    def _deliver(self, message: Message) -> Generator[Event, None, None]:
        self.messages_in += 1
        if message.is_call and self.bound_offcode is not None:
            yield from self._dispatch_call(message)
            return
        if self._handler is not None:
            result = self._handler(message)
            if hasattr(result, "send") and hasattr(result, "throw"):
                yield from result
            return
        yield self.rx.put(message)

    def _dispatch_call(self, message: Message
                       ) -> Generator[Event, None, None]:
        """Run a Call on the bound Offcode and ship its reply back.

        "The Offcode uses the embedded return descriptor to DMA the
        return value back to the application" (Section 4.1): the reply
        travels the channel in reverse, paying the provider's cost,
        before the caller's descriptor fires.
        """
        from repro.core.call import ReturnDescriptor  # cycle-free import
        call = message.payload
        tel = self.site.sim.telemetry
        original = call.return_descriptor
        if original is None:
            if tel is None:
                yield from self.bound_offcode.dispatch(call)
                return
            span = tel.begin(f"execute.{call.method}", "device",
                             f"site:{self.site.name}",
                             parent=call.trace_ctx or tel.current_ctx(),
                             method=call.method)
            token = tel.push_ctx(span.context)
            try:
                yield from self.bound_offcode.dispatch(call)
            finally:
                tel.pop_ctx(token)
                tel.end(span)
            return
        local = ReturnDescriptor(self.site.sim)
        call.return_descriptor = local
        span = token = None
        if tel is not None:
            span = tel.begin(f"execute.{call.method}", "device",
                             f"site:{self.site.name}",
                             parent=call.trace_ctx or tel.current_ctx(),
                             method=call.method)
            token = tel.push_ctx(span.context)
        try:
            yield from self.bound_offcode.dispatch(call)
            if not local.event.triggered:
                raise ChannelError(
                    f"dispatch of {call.method} returned without delivering "
                    "a result")
        finally:
            if span is not None:
                tel.pop_ctx(token)
                tel.end(span, ok=local.event.triggered and local.event.ok)
        # Reverse transfer: result header + encoded payload.
        source_endpoint = next(
            (e for e in self.channel.endpoints
             if e.site.name == message.source), None)
        if source_endpoint is not None and source_endpoint is not self:
            reply_size = 24 + (len(local.event._value)
                               if local.event.ok else 32)
            reply = rtoken = None
            if tel is not None:
                reply = tel.begin("reply", "reply",
                                  self.channel.telemetry_track,
                                  parent=call.trace_ctx or span,
                                  bytes=reply_size)
                rtoken = tel.push_ctx(reply.context)
            try:
                yield from self.channel.provider.transfer(
                    self.channel, self, [source_endpoint], reply_size)
            finally:
                if reply is not None:
                    tel.pop_ctx(rtoken)
                    tel.end(reply)
        call.return_descriptor = original
        if local.event.ok:
            original.deliver(local.event._value)
        else:
            original.deliver_error(local.event._value)


class Channel:
    """A configured pathway between two or more endpoints.

    Channels are produced by the Channel Executive; user code receives
    the creator-side :class:`Endpoint` and calls ``ConnectOffcode``-style
    attachment through the executive (which builds the remote endpoint
    and notifies the Offcode over its OOB channel).
    """

    def __init__(self, config: ChannelConfig, provider,
                 creator_site: ExecutionSite, channel_id: int) -> None:
        self.config = config
        self.provider = provider
        self.channel_id = channel_id
        self.endpoints: List[Endpoint] = [Endpoint(self, creator_site)]
        self.closed = False
        self.messages_sent = 0
        self.bytes_sent = 0
        self.drops = 0
        self.delivered = 0
        self.corrupted = 0
        self.batches_sent = 0
        # Adaptive coalescer, attached by the Channel Executive when the
        # config carries a BatchConfig (None = classic per-message path).
        self.batcher = None
        self.retransmits = 0
        self.dup_dropped = 0
        # Telemetry track name: labelled channels get their label, the
        # rest group by id (one Perfetto track per channel either way).
        self.telemetry_track = (f"channel:{config.label}" if config.label
                                else f"channel:#{channel_id}")
        # Ack/retransmit knobs; may be replaced before a filter is armed.
        self.retransmit_config = RetransmitConfig()
        # Protocol state, armed lazily when a fault filter lands on a
        # RELIABLE channel (None = guaranteed medium, fast path).
        self._rel: Optional[_ReliableState] = None
        # Admission controller stamped by the executive (None = no
        # shedding); decorrelated-jitter state, armed on first use.
        self._admission = None
        self._backoff_prev_ns: Optional[int] = None
        self._backoff_rng = None
        # Fault-injection hook: payload -> "drop" | "corrupt" | None.
        self._fault_filter: Optional[Callable[[Message], Optional[str]]] = None
        self._sequencer: Optional[Resource] = (
            Resource(creator_site.sim, capacity=1)
            if config.sync is SyncMode.SEQUENTIAL else None)

    # -- topology --------------------------------------------------------------------

    @property
    def creator_endpoint(self) -> Endpoint:
        """The endpoint made at channel creation (Figure 3, step 1)."""
        return self.endpoints[0]

    @property
    def connected(self) -> bool:
        """True once a second endpoint exists."""
        return len(self.endpoints) >= 2

    def add_endpoint(self, site: ExecutionSite) -> Endpoint:
        """Construct the far endpoint (done by the executive)."""
        self._check_open()
        if (self.config.kind is ChannelKind.UNICAST
                and len(self.endpoints) >= 2):
            raise ChannelError(
                "unicast channel cannot have more than two endpoints")
        endpoint = Endpoint(self, site)
        self.endpoints.append(endpoint)
        return endpoint

    def endpoint_of(self, offcode) -> Endpoint:
        """The endpoint bound to ``offcode`` (raises if absent)."""
        for endpoint in self.endpoints:
            if endpoint.bound_offcode is offcode:
                return endpoint
        raise ChannelError(
            f"channel #{self.channel_id} has no endpoint bound to "
            f"{getattr(offcode, 'bindname', offcode)!r}")

    def close(self) -> None:
        """Mark the channel closed; further operations raise."""
        self.closed = True

    # -- fault injection & accounting ---------------------------------------------------

    def set_fault_filter(
            self, fault_filter: Optional[Callable[[Message], Optional[str]]]
    ) -> None:
        """Install (or clear) a message-fault filter.

        The filter sees each message after the transfer cost is paid and
        returns ``"drop"`` (the message vanishes), ``"corrupt"`` (its
        payload is mangled in flight) or ``None`` (untouched).  On an
        ``UNRELIABLE`` channel the fault surfaces to the receiver: drops
        vanish, corrupt payloads arrive wrapped in
        :class:`CorruptedPayload`.  On a ``RELIABLE`` channel the filter
        arms the ack/retransmit protocol instead — faults cost wire
        attempts and latency, never delivery: exactly-once semantics are
        *earned* with sequence numbers, cumulative acks, timeout
        retransmission and duplicate suppression (see
        :class:`RetransmitConfig`).
        """
        if (fault_filter is not None and self._rel is None
                and self.config.reliability is Reliability.RELIABLE):
            self._rel = _ReliableState(self, self.retransmit_config)
        self._fault_filter = fault_filter

    def unacked_messages(self) -> List[tuple]:
        """Pending ``(payload, size_bytes)`` pairs, in sequence order.

        Messages that entered the retransmit buffer but were never
        cumulatively acked — after a device failure severs the channel,
        recovery replays these on the survivor's replacement channel so
        an in-flight frame is not lost with the wire.  Empty unless the
        ack/retransmit protocol is armed.
        """
        if self._rel is None:
            return []
        return [self._rel.unacked[seq] for seq in sorted(self._rel.unacked)]

    def stats(self) -> ChannelStats:
        """Current :class:`ChannelStats` snapshot for this channel."""
        return ChannelStats(
            channel_id=self.channel_id, label=self.config.label,
            sent=self.messages_sent, delivered=self.delivered,
            dropped=self.drops, corrupted=self.corrupted,
            bytes=self.bytes_sent, batches=self.batches_sent,
            retransmits=self.retransmits, dup_dropped=self.dup_dropped)

    def _check_open(self) -> None:
        if self.closed:
            raise ChannelClosedError(
                f"channel #{self.channel_id} is closed")

    # -- data movement -----------------------------------------------------------------

    def _write_from(self, source: Endpoint, payload: Any, size_bytes: int
                    ) -> Generator[Event, None, None]:
        self._check_open()
        if not self.connected:
            raise ChannelError(
                f"channel #{self.channel_id} has no remote endpoint")
        if self._rel is not None and self._fault_filter is not None:
            yield from self._reliable_write_from(source, payload, size_bytes)
            return
        sim = source.site.sim
        tel = sim.telemetry
        span = token = None
        if tel is not None:
            span = tel.begin("channel.write", "channel",
                             self.telemetry_track,
                             parent=(getattr(payload, "trace_ctx", None)
                                     or tel.current_ctx()),
                             bytes=size_bytes)
            token = tel.push_ctx(span.context)
        try:
            destinations = [e for e in self.endpoints if e is not source]
            message = Message(payload=payload, size_bytes=size_bytes,
                              sent_at_ns=sim.now,
                              source=source.site.name)
            if self._sequencer is not None:
                yield self._sequencer.request()
            try:
                yield from self.provider.transfer(self, source, destinations,
                                                  size_bytes)
            finally:
                if self._sequencer is not None:
                    self._sequencer.release()
            source.messages_out += 1
            self.messages_sent += 1
            self.bytes_sent += size_bytes
            trace_emit(sim, "channel",
                       f"#{self.channel_id} {source.site.name} -> "
                       f"{','.join(d.site.name for d in destinations)}",
                       bytes=size_bytes, call=message.is_call)
            if self._fault_filter is not None:
                verdict = self._fault_filter(message)
                if verdict == "drop":
                    # Lost on the wire *after* occupying it: cost paid,
                    # no data.
                    self.drops += 1
                    trace_emit(sim, "fault",
                               f"#{self.channel_id} message dropped in "
                               "flight",
                               channel=self.channel_id,
                               label=self.config.label)
                    return
                if verdict == "corrupt":
                    self.corrupted += 1
                    trace_emit(sim, "fault",
                               f"#{self.channel_id} message corrupted in "
                               "flight",
                               channel=self.channel_id,
                               label=self.config.label)
                    message = Message(
                        payload=CorruptedPayload(message.payload),
                        size_bytes=message.size_bytes,
                        sent_at_ns=message.sent_at_ns,
                        source=message.source)
            for destination in destinations:
                dropped_before = destination.rx.dropped
                yield from destination._deliver(message)
                delta = destination.rx.dropped - dropped_before
                if delta > 0:
                    self.drops += delta
                else:
                    self.delivered += 1
        finally:
            if span is not None:
                tel.pop_ctx(token)
                tel.end(span)

    # -- the earned-reliability path -----------------------------------------------------

    def _reliable_backoff_ns(self, attempt: int) -> int:
        """Capped exponential retransmit delay after ``attempt`` failures.

        With ``jitter`` configured, the deterministic schedule is
        blended with a *decorrelated* draw — ``uniform(base, 3 *
        previous_delay)`` — so channels that lost frames to the same
        burst do not retry in lockstep and collide again.  The draw
        comes from a per-channel stream of the simulation's seeded RNG
        (``sim.rng_streams``) when one is installed, falling back to a
        channel-id-seeded generator, so runs stay reproducible either
        way.
        """
        cfg = self._rel.config
        delay = cfg.timeout_ns * (cfg.backoff_factor ** max(0, attempt - 1))
        delay = max(1, min(int(delay), cfg.max_timeout_ns))
        if cfg.jitter <= 0.0:
            return delay
        rng = self._backoff_rng
        if rng is None:
            sim = self.creator_endpoint.site.sim
            streams = getattr(sim, "rng_streams", None)
            if streams is not None:
                rng = streams.stream(f"backoff/{self.channel_id}")
            else:
                rng = random.Random(0x0FF10AD ^ self.channel_id)
            self._backoff_rng = rng
        prev = self._backoff_prev_ns or cfg.timeout_ns
        decorrelated = rng.uniform(float(cfg.timeout_ns), 3.0 * prev)
        blended = int((1.0 - cfg.jitter) * delay + cfg.jitter * decorrelated)
        blended = max(1, min(blended, cfg.max_timeout_ns))
        self._backoff_prev_ns = blended
        return blended

    def _reliable_write_from(self, source: Endpoint, payload: Any,
                             size_bytes: int
                             ) -> Generator[Event, None, None]:
        """One write under the ack/retransmit protocol.

        Acquires a slot in the bounded retransmit buffer (blocking when
        the window is full — backpressure), stamps a sequence number,
        and runs the exchange until the message is cumulatively acked.
        The sequencer, when present, is held across the *whole* exchange
        so retransmissions cannot interleave with younger messages and
        FIFO order survives loss.
        """
        rel = self._rel
        yield rel.window.request()
        try:
            if self._sequencer is not None:
                yield self._sequencer.request()
            try:
                seq = rel.next_seq
                rel.next_seq += 1
                rel.unacked[seq] = (payload, size_bytes)
                message = SequencedMessage(
                    payload=payload, size_bytes=size_bytes,
                    sent_at_ns=source.site.sim.now,
                    source=source.site.name, seq=seq)
                destinations = [e for e in self.endpoints if e is not source]
                yield from self._reliable_exchange(
                    source, destinations, message, seq, size_bytes,
                    transfer_first=True)
                source.messages_out += 1
            finally:
                if self._sequencer is not None:
                    self._sequencer.release()
        finally:
            rel.window.release()

    def _reliable_exchange(self, source: Endpoint,
                           destinations: List[Endpoint],
                           message: Message, seq: int, size_bytes: int,
                           transfer_first: bool
                           ) -> Generator[Event, None, None]:
        """Transmit ``message`` until it is delivered *and* acked.

        Each wire attempt pays the provider's transfer cost, then the
        fault filter rules on the frame: a drop vanishes, a corrupt
        frame fails the receiver's checksum — either way the sender
        backs off and retransmits.  An intact duplicate (a retransmit
        whose original actually arrived but whose ack was lost) is
        suppressed and re-acked.  The cumulative ack itself rides a
        reverse transfer through the same filter, so ack loss is the
        natural source of duplicates.  ``transfer_first=False`` lets a
        vectored batch reuse its single scatter-gather transfer as every
        entry's first attempt.
        """
        rel = self._rel
        cfg = rel.config
        sim = source.site.sim
        tel = sim.telemetry
        span = token = None
        if tel is not None:
            span = tel.begin("channel.exchange", "channel",
                             self.telemetry_track,
                             parent=(getattr(message.payload, "trace_ctx",
                                             None) or tel.current_ctx()),
                             seq=seq, bytes=size_bytes)
            token = tel.push_ctx(span.context)
        try:
            yield from self._exchange_attempts(
                source, destinations, message, seq, size_bytes,
                transfer_first, rel, cfg, sim)
        finally:
            if span is not None:
                tel.pop_ctx(token)
                tel.end(span)

    def _exchange_attempts(self, source: Endpoint,
                           destinations: List[Endpoint],
                           message: Message, seq: int, size_bytes: int,
                           transfer_first: bool, rel, cfg, sim
                           ) -> Generator[Event, None, None]:
        attempt = 0
        while True:
            attempt += 1
            if attempt > cfg.max_attempts:
                raise ChannelError(
                    f"channel #{self.channel_id} gave up on seq {seq} "
                    f"after {cfg.max_attempts} attempts")
            if attempt > 1 or transfer_first:
                self._check_open()
                yield from self.provider.transfer(self, source, destinations,
                                                  size_bytes)
                self.messages_sent += 1
                self.bytes_sent += size_bytes
                if attempt > 1:
                    self.retransmits += 1
                    trace_emit(sim, "channel",
                               f"#{self.channel_id} retransmit seq={seq} "
                               f"attempt={attempt}",
                               channel=self.channel_id,
                               label=self.config.label)
            verdict = (self._fault_filter(message)
                       if self._fault_filter is not None else None)
            if verdict == "drop":
                self.drops += 1
                trace_emit(sim, "fault",
                           f"#{self.channel_id} seq={seq} dropped in "
                           "flight; will retransmit",
                           channel=self.channel_id, label=self.config.label)
                yield sim.timeout(self._reliable_backoff_ns(attempt))
                continue
            if verdict == "corrupt":
                # The receiver's checksum rejects the mangled frame: it
                # never surfaces; to the protocol this is another loss.
                self.corrupted += 1
                self.drops += 1
                trace_emit(sim, "fault",
                           f"#{self.channel_id} seq={seq} corrupted in "
                           "flight; checksum reject, will retransmit",
                           channel=self.channel_id, label=self.config.label)
                yield sim.timeout(self._reliable_backoff_ns(attempt))
                continue
            # The frame arrived intact.
            if seq <= rel.contiguous or seq in rel.seen:
                self.dup_dropped += 1
                self.drops += 1
                trace_emit(sim, "channel",
                           f"#{self.channel_id} duplicate seq={seq} "
                           "suppressed; re-acking",
                           channel=self.channel_id, label=self.config.label)
            else:
                rel.seen.add(seq)
                while (rel.contiguous + 1) in rel.seen:
                    rel.contiguous += 1
                    rel.seen.discard(rel.contiguous)
                for destination in destinations:
                    yield from destination._deliver(message)
                self.delivered += 1
            acked = yield from self._reverse_ack(source, destinations)
            if acked:
                for done in [s for s in rel.unacked
                             if s <= rel.contiguous or s == seq]:
                    del rel.unacked[done]
                return
            yield sim.timeout(self._reliable_backoff_ns(attempt))

    def _reverse_ack(self, source: Endpoint, destinations: List[Endpoint]
                     ) -> Generator[Event, None, bool]:
        """Ship the cumulative ack back to the sender; False if it is lost."""
        rel = self._rel
        sim = source.site.sim
        acker = destinations[0]
        yield from self.provider.transfer(self, acker, [source],
                                          rel.config.ack_bytes)
        ack = Message(payload=("ack", rel.contiguous),
                      size_bytes=rel.config.ack_bytes,
                      sent_at_ns=sim.now, source=acker.site.name)
        verdict = (self._fault_filter(ack)
                   if self._fault_filter is not None else None)
        if verdict in ("drop", "corrupt"):
            trace_emit(sim, "fault",
                       f"#{self.channel_id} ack (cum={rel.contiguous}) "
                       "lost in flight",
                       channel=self.channel_id, label=self.config.label)
            return False
        return True

    def _send_vectored_reliable(self, source: Endpoint, batch: CallBatch,
                                destinations: List[Endpoint]
                                ) -> Generator[Event, None, None]:
        """Vectored dispatch under the ack/retransmit protocol.

        The batch still moves as one scatter-gather transfer — that
        transaction is every entry's first wire attempt — but each entry
        gets its own sequence number and runs the exchange to completion
        (duplicate-suppressed retransmits are per-entry singles), so a
        lost frame inside a batch is recovered without resending its
        siblings.
        """
        rel = self._rel
        tel = source.site.sim.telemetry
        span = token = None
        if tel is not None:
            span = tel.begin("channel.batch", "channel",
                             self.telemetry_track,
                             parent=tel.current_ctx(), count=batch.count,
                             bytes=batch.size_bytes, reliable=True)
            token = tel.push_ctx(span.context)
        if self._sequencer is not None:
            yield self._sequencer.request()
        try:
            yield from self.provider.transfer_vectored(
                self, source, destinations, batch)
            source.messages_out += batch.count
            self.messages_sent += batch.count
            self.batches_sent += 1
            self.bytes_sent += batch.size_bytes
            trace_emit(source.site.sim, "channel",
                       f"#{self.channel_id} {source.site.name} => "
                       f"{','.join(d.site.name for d in destinations)} "
                       f"[reliable batch n={batch.count}]",
                       bytes=batch.size_bytes, batch=batch.count)
            for entry in batch:
                seq = rel.next_seq
                rel.next_seq += 1
                rel.unacked[seq] = (entry.payload, entry.size_bytes)
                message = SequencedMessage(
                    payload=entry.payload, size_bytes=entry.size_bytes,
                    sent_at_ns=entry.enqueued_at_ns,
                    source=source.site.name, seq=seq)
                yield from self._reliable_exchange(
                    source, destinations, message, seq, entry.size_bytes,
                    transfer_first=False)
        finally:
            if self._sequencer is not None:
                self._sequencer.release()
            if span is not None:
                tel.pop_ctx(token)
                tel.end(span)

    def send_vectored(self, source: Endpoint, batch: CallBatch
                      ) -> Generator[Event, None, None]:
        """Move a whole :class:`CallBatch` as one vectored transaction.

        The provider pays a *single* scatter-gather transfer for the
        batch (one bus transaction on scatter-gather hardware) instead
        of one per entry; each entry is then delivered as its own
        :class:`Message`, stamped with its original enqueue time so
        latency accounting includes the coalescing wait.
        """
        self._check_open()
        if batch.count == 0:
            return
        if not self.connected:
            raise ChannelError(
                f"channel #{self.channel_id} has no remote endpoint")
        destinations = [e for e in self.endpoints if e is not source]
        if self._rel is not None and self._fault_filter is not None:
            yield from self._send_vectored_reliable(source, batch,
                                                    destinations)
            return
        tel = source.site.sim.telemetry
        span = token = None
        if tel is not None:
            span = tel.begin("channel.batch", "channel",
                             self.telemetry_track,
                             parent=tel.current_ctx(), count=batch.count,
                             bytes=batch.size_bytes)
            token = tel.push_ctx(span.context)
        try:
            if self._sequencer is not None:
                yield self._sequencer.request()
            try:
                yield from self.provider.transfer_vectored(
                    self, source, destinations, batch)
            finally:
                if self._sequencer is not None:
                    self._sequencer.release()
            source.messages_out += batch.count
            self.messages_sent += batch.count
            self.batches_sent += 1
            self.bytes_sent += batch.size_bytes
            trace_emit(source.site.sim, "channel",
                       f"#{self.channel_id} {source.site.name} => "
                       f"{','.join(d.site.name for d in destinations)} "
                       f"[batch n={batch.count}]",
                       bytes=batch.size_bytes, batch=batch.count)
            for entry in batch:
                message = Message(payload=entry.payload,
                                  size_bytes=entry.size_bytes,
                                  sent_at_ns=entry.enqueued_at_ns,
                                  source=source.site.name)
                if self._fault_filter is not None:
                    verdict = self._fault_filter(message)
                    if verdict == "drop":
                        self.drops += 1
                        trace_emit(source.site.sim, "fault",
                                   f"#{self.channel_id} batched message "
                                   "dropped in flight",
                                   channel=self.channel_id,
                                   label=self.config.label)
                        continue
                    if verdict == "corrupt":
                        self.corrupted += 1
                        message = Message(
                            payload=CorruptedPayload(message.payload),
                            size_bytes=message.size_bytes,
                            sent_at_ns=message.sent_at_ns,
                            source=message.source)
                for destination in destinations:
                    dropped_before = destination.rx.dropped
                    yield from destination._deliver(message)
                    delta = destination.rx.dropped - dropped_before
                    if delta > 0:
                        self.drops += delta
                    else:
                        self.delivered += 1
        finally:
            if span is not None:
                tel.pop_ctx(token)
                tel.end(span)

    # -- call convenience ------------------------------------------------------------------

    def send_call(self, source: Endpoint, call: Call
                  ) -> Generator[Event, None, Any]:
        """Send a Call and (for two-way methods) await its return value.

        One-way Calls on a batched channel may be coalesced into a
        vectored transaction by the Channel Executive's batcher; two-way
        Calls always take the direct path (the caller is blocked on the
        reply).  Returns the *encoded* result; proxies decode it against
        the interface spec.

        While admission control is engaged (supervisor brownout policy),
        calls on channels below the protected priority are refused here
        with :class:`~repro.errors.AdmissionShedError` — shedding at the
        submission edge keeps the backlog from outliving the brownout.
        Raw ``endpoint.write`` traffic (OOB, checkpoints, the data
        plane) never passes through this path and is never shed.
        """
        if (self._admission is not None
                and not self._admission.admit(self.config.priority)):
            raise AdmissionShedError(
                f"call {call.method} shed on channel #{self.channel_id} "
                f"(priority {self.config.priority} below protected class)",
                priority=self.config.priority)
        if call.one_way and self.batcher is not None:
            coalesced = yield from self.batcher.offer(source, call,
                                                      call.size_bytes)
            if coalesced:
                return None
        yield from self._write_from(source, call, call.size_bytes)
        if call.return_descriptor is None:
            return None
        encoded = yield call.return_descriptor.event
        return encoded

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = self.config.kind.value
        return (f"<Channel #{self.channel_id} {kind} "
                f"provider={getattr(self.provider, 'name', '?')} "
                f"endpoints={len(self.endpoints)}>")
