"""The Offcode component model.

"An Offcode is a component that contains its state, a well-defined
interface and a thread of control" (Section 3).  Concretely:

* **state** — ordinary Python attributes plus site-local memory obtained
  through the execution site;
* **interfaces** — :class:`InterfaceSpec` objects declared on the class;
  incoming :class:`~repro.core.call.Call` objects are dispatched to the
  method of the same name;
* **thread of control** — an optional :meth:`main` generator spawned
  when the Offcode starts.

Lifecycle (Section 3.1): construction at the target, then two-phase
bring-up — ``Initialize`` ("the Offcode can access local resources
only", peers may not exist yet) followed by ``StartOffcode`` once every
related Offcode is in place ("at this point, inter-Offcode
communication is facilitated").
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple

from repro.errors import (DeviceFailedError, InterfaceError, InterruptError,
                          OffcodeError)
from repro.core.call import Call
from repro.core.guid import Guid, guid_from_name
from repro.core.interfaces import IOFFCODE, InterfaceSpec
from repro.core import marshal
from repro.core.sites import ExecutionSite
from repro.sim.engine import Event, Process
from repro.sim.trace import emit as trace_emit

__all__ = ["OffcodeState", "Offcode"]


class OffcodeState:
    """Lifecycle states, in legal order."""

    CREATED = "created"
    INITIALIZED = "initialized"
    RUNNING = "running"
    STOPPED = "stopped"
    FAILED = "failed"

    ORDER = (CREATED, INITIALIZED, RUNNING, STOPPED)


class Offcode:
    """Base class for all Offcodes (user and pseudo).

    Subclasses set :attr:`BINDNAME` and :attr:`INTERFACES`, implement a
    method per interface operation, and may override the lifecycle hooks
    ``on_initialize`` / ``on_start`` / ``on_stop`` (generators) and
    :meth:`main` (the thread of control).
    """

    BINDNAME: str = ""
    INTERFACES: Tuple[InterfaceSpec, ...] = ()
    # Nominal per-dispatch execution cost on the site CPU; subclasses
    # with heavier methods charge more inside the method body.
    DISPATCH_COST_NS: int = 2_000

    def __init__(self, site: ExecutionSite,
                 guid: Optional[Guid] = None) -> None:
        if not self.BINDNAME:
            raise OffcodeError(
                f"{type(self).__name__} does not define BINDNAME")
        self.site = site
        self.guid = guid or guid_from_name(self.BINDNAME)
        self.state = OffcodeState.CREATED
        self.oob_channel = None          # set by the runtime at deployment
        self.channels: List[Any] = []    # connected channels, in attach order
        self.management_events: List[Any] = []
        self._main_process: Optional[Process] = None
        self.calls_handled = 0

    # -- identity -----------------------------------------------------------------

    @property
    def bindname(self) -> str:
        """The Offcode's unique bind name (class-level BINDNAME)."""
        return self.BINDNAME

    @property
    def location(self) -> str:
        """Site name: ``"host"`` or the device name."""
        return self.site.name

    def query_interface(self, guid: Guid) -> InterfaceSpec:
        """The IOffcode.QueryInterface operation."""
        if guid == IOFFCODE.guid:
            return IOFFCODE
        for spec in self.INTERFACES:
            if spec.guid == guid:
                return spec
        raise InterfaceError(
            f"{self.bindname} does not implement interface {guid}")

    def implements(self, guid: Guid) -> bool:
        """True if this Offcode exposes the interface ``guid``."""
        return guid == IOFFCODE.guid or any(
            s.guid == guid for s in self.INTERFACES)

    # -- lifecycle -------------------------------------------------------------------

    def initialize(self) -> Generator[Event, None, None]:
        """Phase 1: acquire local resources (peers may not exist yet)."""
        self._require_state(OffcodeState.CREATED, "Initialize")
        yield from self.on_initialize()
        self.state = OffcodeState.INITIALIZED
        trace_emit(self.site.sim, "offcode",
                   f"{self.bindname}@{self.location} initialized")

    def start(self) -> Generator[Event, None, None]:
        """Phase 2: peers are deployed; begin the thread of control."""
        self._require_state(OffcodeState.INITIALIZED, "StartOffcode")
        yield from self.on_start()
        self.state = OffcodeState.RUNNING
        trace_emit(self.site.sim, "offcode",
                   f"{self.bindname}@{self.location} started")
        main = self.main()
        if main is not None:
            self._main_process = self.site.sim.spawn(
                self._run_main(main),
                name=f"{self.bindname}@{self.location}")

    def _run_main(self, generator) -> Generator[Event, None, None]:
        """Wrap the thread of control so stop() terminates it cleanly.

        A crash of the hosting device surfaces here as
        :class:`DeviceFailedError`; the thread dies quietly (the
        watchdog/runtime own the recovery) instead of taking the whole
        simulation down as an unwatched failing process would.
        """
        try:
            yield from generator
        except InterruptError:
            pass
        except DeviceFailedError:
            self.state = OffcodeState.FAILED
            trace_emit(self.site.sim, "fault",
                       f"{self.bindname}@{self.location} thread died with "
                       "its device")

    def stop(self) -> Generator[Event, None, None]:
        """Tear down; interrupts the thread of control if it is waiting."""
        if self.state not in (OffcodeState.RUNNING, OffcodeState.INITIALIZED):
            raise OffcodeError(
                f"cannot stop {self.bindname} in state {self.state}")
        if self._main_process is not None and self._main_process.alive:
            self._main_process.interrupt("stop")
            self._main_process = None
        yield from self.on_stop()
        self.state = OffcodeState.STOPPED
        trace_emit(self.site.sim, "offcode",
                   f"{self.bindname}@{self.location} stopped")

    def fail(self) -> None:
        """Mark FAILED without teardown (the runtime's kill() adds that)."""
        self.state = OffcodeState.FAILED

    def kill(self) -> None:
        """Immediate failure path: terminate the thread of control and
        mark FAILED without running the graceful ``on_stop`` hook.  The
        runtime then releases the resource subtree (Section 4's robust
        cleanup)."""
        if self._main_process is not None and self._main_process.alive:
            self._main_process.interrupt("kill")
            self._main_process = None
        self.state = OffcodeState.FAILED

    def _require_state(self, expected: str, operation: str) -> None:
        if self.state != expected:
            raise OffcodeError(
                f"{operation} on {self.bindname}: state is {self.state}, "
                f"must be {expected}")

    # -- hooks (override in subclasses) --------------------------------------------------

    def on_initialize(self) -> Generator[Event, None, None]:
        """Phase-1 hook: acquire local resources (override as a generator)."""
        yield from self.site.execute(5_000, context=f"{self.bindname}-init")

    def on_start(self) -> Generator[Event, None, None]:
        """Phase-2 hook: peers exist; last setup before main() spawns."""
        yield from self.site.execute(2_000, context=f"{self.bindname}-start")

    def on_stop(self) -> Generator[Event, None, None]:
        """Graceful-teardown hook (override as a generator)."""
        yield from self.site.execute(2_000, context=f"{self.bindname}-stop")

    def main(self) -> Optional[Generator[Event, None, None]]:
        """The Offcode's thread of control; None for purely reactive ones."""
        return None

    def on_channel_attached(self, channel) -> None:
        """Synchronous wiring hook: a new channel endpoint now exists.

        The runtime *also* delivers an asynchronous management event
        over the OOB channel (Section 3.2: the OOB channel notifies the
        Offcode about "availability of other channels"); that arrives
        later at :meth:`on_management_event` with its transfer cost paid.
        """
        self.channels.append(channel)

    def on_management_event(self, event: Any) -> None:
        """OOB management event (channel availability, control traffic).

        Default behaviour records the event; subclasses react to the
        payloads they care about.
        """
        self.management_events.append(event)

    def prepare_migrate(self) -> Generator[Event, None, None]:
        """Cooperative quiesce hook for live migration (override freely).

        The runtime calls this (bounded by the migration's prepare
        timeout) before checkpointing: a subclass with a thread of
        control should park it at a consistent point — between work
        items, with no partially-sent message — so the drain that
        follows empties every unacked queue and the cutover is
        exactly-once.  The base class has nothing to park.
        """
        return
        yield  # pragma: no cover - makes this a generator

    # -- checkpoint/restore contract ----------------------------------------------------

    def snapshot(self) -> Optional[Any]:
        """Serialize recovery-relevant state, or ``None`` to opt out.

        Subclasses that want failure transparency return a
        marshal-encodable value (dict/list/scalars).  The checkpoint
        service periodically ships it over the OOB channel to the
        host-side depot; after a device failure, recovery calls
        :meth:`restore` with the last shipped value on the replacement
        instance.  The base class opts out — pseudo Offcodes and
        stateless components cost nothing.
        """
        return None

    def restore(self, state: Any) -> None:
        """Adopt a previously snapshotted state on a fresh instance.

        Called by recovery after redeployment, before recovery hooks
        rewire data channels.  A subclass that overrides
        :meth:`snapshot` must override this too.
        """
        raise OffcodeError(
            f"{self.bindname} snapshots state but does not implement "
            "restore()")

    # -- call dispatch ------------------------------------------------------------------

    def dispatch(self, call: Call) -> Generator[Event, None, None]:
        """Execute an incoming Call and deliver its return value.

        The target method may be a plain function or a generator (when it
        needs to wait or charge site CPU time itself).
        """
        if self.state != OffcodeState.RUNNING:
            error = OffcodeError(
                f"call {call.method} on {self.bindname} while {self.state}")
            if call.return_descriptor is not None:
                call.return_descriptor.deliver_error(error)
                return
            raise error
        spec = self.query_interface(call.interface_guid)
        method_spec = spec.method(call.method)
        target = getattr(self, call.method, None)
        if target is None:
            raise InterfaceError(
                f"{self.bindname} declares {spec.name}.{call.method} "
                "but does not implement it")
        yield from self.site.execute(
            self.DISPATCH_COST_NS, context=f"{self.bindname}-dispatch")
        try:
            result = target(*call.args())
            if hasattr(result, "send") and hasattr(result, "throw"):
                result = yield from result
        except Exception as exc:
            self.calls_handled += 1
            if call.return_descriptor is not None:
                call.return_descriptor.deliver_error(exc)
                return
            raise
        self.calls_handled += 1
        if call.return_descriptor is not None:
            if method_spec.result == "none":
                result = None
            call.return_descriptor.deliver(marshal.encode(result))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Offcode {self.bindname}@{self.location} "
                f"state={self.state}>")
