"""The deployment pipeline (Figure 5's control flow).

``CreateOffcode`` kicks off five phases:

1. **Parse** — load the ODF and, transitively, everything it imports.
2. **Resolve** — build the offloading layout graph and solve it
   (:mod:`repro.core.layout.resolver`), pinning Offcodes that earlier
   deployments already placed (component reuse, Section 5).
3. **Adapt** — compile source-form Offcodes for their targets; derive
   binary images for object-form ones.
4. **Load** — run each device's loader (host-linked or device-linked),
   instantiate the implementation from the Depot at its site, give it an
   OOB channel, and record everything in the resource tree so a failing
   parent tears its children down.
5. **Start** — two-phase bring-up: ``Initialize`` everywhere first
   ("peer Offcodes may not have been offloaded yet"), then
   ``StartOffcode`` everywhere ("at this point, inter-Offcode
   communication is facilitated").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.errors import DeploymentError
from repro.core.channel import ChannelConfig
from repro.core.layout.objectives import Objective
from repro.core.layout.resolver import ResolvedLayout
from repro.core.loader import LoadReport, OffcodeImage, compile_for_target
from repro.core.odf import OdfDocument
from repro.core.offcode import Offcode
from repro.sim.engine import Event
from repro.sim.trace import emit as trace_emit

__all__ = ["DeploymentReport", "DeploymentPipeline", "OOB_CHANNEL_CONFIG"]

# "The runtime assigns a default connectionless channel, called the
# Out-Of-Band Channel ... for initialization and control traffic that is
# not performance critical" — low priority, copying semantics.
OOB_CHANNEL_CONFIG = (ChannelConfig.unicast().reliable().sequential()
                      .copied().with_ring_slots(32).with_priority(0))


@dataclass
class DeploymentReport:
    """Everything one ``CreateOffcode`` deployment produced."""

    root_bindname: str
    layout: ResolvedLayout
    offcodes: Dict[str, Offcode] = field(default_factory=dict)
    reused: List[str] = field(default_factory=list)
    load_reports: List[LoadReport] = field(default_factory=list)
    elapsed_ns: int = 0
    roots: List[str] = field(default_factory=list)

    @property
    def root_offcode(self) -> Offcode:
        """The root application Offcode this deployment created."""
        return self.offcodes[self.root_bindname]

    def location_of(self, bindname: str) -> str:
        """Where the layout placed ``bindname`` (device name or 'host')."""
        return self.layout.device_of(bindname)


class DeploymentPipeline:
    """Executes Figure 5 for a :class:`HydraRuntime`."""

    def __init__(self, runtime) -> None:
        self.runtime = runtime

    def deploy(self, odf_path: str,
               objective: Optional[Objective] = None
               ) -> Generator[Event, None, DeploymentReport]:
        """Run Figure 5 for one ODF and its import closure."""
        documents = self.runtime.library.load_closure(odf_path)
        return (yield from self._deploy(documents,
                                        roots=[documents[0].bindname],
                                        objective=objective))

    def deploy_many(self, odf_paths: List[str],
                    objective: Optional[Objective] = None
                    ) -> Generator[Event, None, DeploymentReport]:
        """Deploy several applications under ONE joint layout solve.

        Section 5's motivation: "in multi-user environments, reusing the
        same Offcode in several applications may substantially
        complicate the offloading layout design."  Deploying apps one at
        a time pins shared Offcodes wherever the first app put them;
        solving the union closure jointly lets the ILP satisfy every
        app's constraints at once.
        """
        if not odf_paths:
            raise DeploymentError("deploy_many needs at least one ODF")
        documents: List[OdfDocument] = []
        roots: List[str] = []
        seen = set()
        for path in odf_paths:
            closure = self.runtime.library.load_closure(path)
            roots.append(closure[0].bindname)
            for document in closure:
                if document.bindname not in seen:
                    seen.add(document.bindname)
                    documents.append(document)
        return (yield from self._deploy(documents, roots=roots,
                                        objective=objective))

    def _deploy(self, documents: List[OdfDocument], roots: List[str],
                objective: Optional[Objective],
                pinned_extra: Optional[Dict[str, str]] = None,
                allow: Optional[set] = None,
                banned: Optional[Dict[str, tuple]] = None
                ) -> Generator[Event, None, DeploymentReport]:
        runtime = self.runtime
        sim = runtime.sim
        start_ns = sim.now

        # Phase 2: resolve the layout, respecting existing placements.
        # Devices the watchdog has declared dead are excluded from the
        # candidate set; a non-empty exclusion also marks the solve as
        # degraded (recovery may drop mandatory co-location constraints).
        # Standby and quarantined devices are excluded too, but only
        # failures and quarantines make the solve *degraded* — a healthy
        # spare sitting idle must not change baseline solver behaviour.
        # ``allow`` re-admits named devices for this solve (migration
        # pinning onto a standby spare); ``banned`` forbids specific
        # bindname→device pairings (migration away from a live source);
        # ``pinned_extra`` pins bindnames that have no current placement
        # (the victim was torn down just before the re-solve).
        failed = set(getattr(runtime, "failed_devices", None) or ())
        quarantined = set(getattr(runtime, "quarantined_devices", None) or ())
        standby = set(getattr(runtime, "standby_devices", None) or ())
        degraded_set = failed | quarantined
        exclude = sorted((degraded_set | standby) - (allow or set()))
        # A pin on an excluded device would make every layout infeasible.
        # That happens during overlapping recoveries: incident #2's solve
        # sees survivors of incident #1 still registered on a device that
        # just died.  Those instances are about to be torn down by their
        # own incident, so drop the pin and let the solver relocate them.
        excluded_devices = set(exclude)
        pinned = {
            d.bindname: runtime.locate(d.bindname).location
            for d in documents if runtime.locate(d.bindname) is not None
        }
        pinned = {bindname: location for bindname, location in pinned.items()
                  if location not in excluded_devices}
        if pinned_extra:
            for bindname, location in pinned_extra.items():
                if location not in excluded_devices:
                    pinned.setdefault(bindname, location)
        layout = runtime.resolver.resolve(documents, objective=objective,
                                          pinned=pinned, exclude=exclude,
                                          degraded=bool(degraded_set),
                                          banned=banned)
        # A re-solve can move Offcodes between sites, so every memoized
        # provider ranking is suspect: retire the executive's cost cache
        # by advancing the layout epoch.
        runtime.executive.invalidate_cost_cache()

        report = DeploymentReport(root_bindname=roots[0], layout=layout,
                                  roots=list(roots))

        trace_emit(sim, "deploy",
                   f"layout resolved for {', '.join(roots)}",
                   placement=tuple(sorted(layout.placement.items())))

        # Phases 3+4 per Offcode: adapt, load, instantiate, wire OOB.
        new_offcodes: List[Offcode] = []
        for document in documents:
            existing = runtime.locate(document.bindname)
            if existing is not None:
                report.offcodes[document.bindname] = existing
                report.reused.append(document.bindname)
                continue
            offcode = yield from self._place_one(document, layout, report)
            report.offcodes[document.bindname] = offcode
            new_offcodes.append(offcode)

        # Phase 5: two-phase bring-up.
        for offcode in new_offcodes:
            yield from offcode.initialize()
        for offcode in new_offcodes:
            yield from offcode.start()

        report.elapsed_ns = sim.now - start_ns
        trace_emit(sim, "deploy",
                   f"deployment of {', '.join(roots)} complete",
                   new=len(new_offcodes), reused=len(report.reused),
                   elapsed_us=report.elapsed_ns // 1000)
        return report

    # -- single-offcode placement ----------------------------------------------------

    def _place_one(self, document: OdfDocument, layout: ResolvedLayout,
                   report: DeploymentReport
                   ) -> Generator[Event, None, Offcode]:
        runtime = self.runtime
        location = layout.device_of(document.bindname)

        loaded_region = None
        loaded_device = None
        if location == "host":
            site = runtime.host_site
            device_class = "host"
            vendor = None
        else:
            device_runtime = runtime.device_runtime(location)
            site = device_runtime.site
            device_class = device_runtime.device.device_class
            vendor = device_runtime.device.spec.vendor
            # Adapt: compile if source form, then dynamic-load the image.
            image: OffcodeImage = yield from compile_for_target(
                document, runtime.host_site)
            loader = runtime.loaders.loader_for(location)
            try:
                load_report = yield from loader.load(
                    image, device_runtime.device, runtime.host_site)
            except Exception as exc:
                raise DeploymentError(
                    f"loading {document.bindname} onto {location} "
                    f"failed mid-deployment: {exc}") from exc
            report.load_reports.append(load_report)
            loaded_region = load_report.region
            loaded_device = device_runtime.device

        entry = runtime.depot.lookup(document.guid, device_class,
                                     vendor=vendor)
        try:
            offcode = entry.implementation(site)
        except Exception as exc:
            raise DeploymentError(
                f"instantiating {document.bindname} at {location} "
                f"failed: {exc}") from exc
        if not isinstance(offcode, Offcode):
            raise DeploymentError(
                f"depot factory for {document.bindname} returned "
                f"{type(offcode).__name__}, not an Offcode")
        offcode.guid = document.guid

        runtime.register_offcode(offcode, document)
        if location != "host":
            runtime.device_runtime(location).host_offcode(offcode)

        # Give the Offcode its OOB channel (runtime side is the creator).
        oob = runtime.executive.create_channel(OOB_CHANNEL_CONFIG,
                                               runtime.host_site)
        oob_endpoint = runtime.executive.connect_offcode(oob, offcode)
        offcode.oob_channel = oob
        # Management events (channel availability etc.) arrive here.
        oob_endpoint.install_call_handler(
            lambda message: offcode.on_management_event(message.payload))

        # Hierarchical resources (Section 4): the Offcode's node owns its
        # loaded image and its channels; releasing the parent — stop or
        # failure — frees them all, children first.
        node = runtime.resources.lookup(document.bindname)
        if loaded_region is not None:
            device, region = loaded_device, loaded_region
            runtime.resources.track(
                f"{document.bindname}/image", kind="device-memory",
                parent=node,
                finalizer=lambda: device.memory.free(region))
        runtime.resources.track(
            f"{document.bindname}/oob", kind="channel", parent=node,
            finalizer=oob.close)
        return offcode
