"""Execution sites — where an Offcode's thread of control runs.

The framework's "holy grail is for the programmer to be completely
unaware of the fact that parts of the system she is writing will be
running on a programmable device" (Section 2).  The mechanism here is
the :class:`ExecutionSite`: Offcode code charges CPU time and allocates
memory through its site, so the *same* Offcode class runs unchanged on
the host (:class:`HostSite`) or on any device (:class:`DeviceSite`) —
only costs and visibility differ.
"""

from __future__ import annotations

from typing import Generator

from repro.errors import HydraError
from repro.hw.device import MemoryRegion, ProgrammableDevice
from repro.hw.machine import Machine
from repro.sim.engine import Event, Simulator

__all__ = ["ExecutionSite", "HostSite", "DeviceSite", "HOST_SITE_NAME"]

HOST_SITE_NAME = "host"


class ExecutionSite:
    """Abstract location providing compute and memory to Offcodes."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name

    @property
    def is_host(self) -> bool:
        """True for the host CPU site."""
        raise NotImplementedError

    def execute(self, duration_ns: int, context: str
                ) -> Generator[Event, None, None]:
        """Charge ``duration_ns`` of work to this site's processor."""
        raise NotImplementedError

    def allocate(self, size: int, label: str = "") -> MemoryRegion:
        """Allocate site-local memory."""
        raise NotImplementedError

    def free(self, region: MemoryRegion) -> None:
        """Release a region obtained from :meth:`allocate`."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


class HostSite(ExecutionSite):
    """The host CPU as an execution site (``X^0_n = 1`` in the ILP)."""

    # Host "allocations" are bookkept but unbounded (512 MB vs kB-scale
    # Offcodes; host memory pressure is modelled via the cache, not here).

    def __init__(self, machine: Machine) -> None:
        super().__init__(machine.sim, HOST_SITE_NAME)
        self.machine = machine
        self._alloc_cursor = 0x2000_0000
        self.allocated_bytes = 0

    @property
    def is_host(self) -> bool:
        """Always True."""
        return True

    def execute(self, duration_ns: int, context: str
                ) -> Generator[Event, None, None]:
        yield from self.machine.cpu.execute(duration_ns, context=context)

    def allocate(self, size: int, label: str = "") -> MemoryRegion:
        if size <= 0:
            raise HydraError(f"allocation size must be positive: {size}")
        region = MemoryRegion(base=self._alloc_cursor, size=size, label=label)
        self._alloc_cursor += (size + 15) & ~15
        self.allocated_bytes += region.size
        return region

    def free(self, region: MemoryRegion) -> None:
        """Release a host region (double frees raise)."""
        if region.freed:
            raise HydraError(f"double free of host region {region.label!r}")
        region.freed = True
        self.allocated_bytes -= region.size


class DeviceSite(ExecutionSite):
    """A programmable device as an execution site."""

    def __init__(self, device: ProgrammableDevice) -> None:
        super().__init__(device.sim, device.name)
        self.device = device

    @property
    def is_host(self) -> bool:
        """Always False."""
        return False

    def execute(self, duration_ns: int, context: str
                ) -> Generator[Event, None, None]:
        yield from self.device.run_on_device(duration_ns, context=context)

    def allocate(self, size: int, label: str = "") -> MemoryRegion:
        return self.device.memory.allocate(size, label=label)

    def free(self, region: MemoryRegion) -> None:
        """Return a region to the device allocator."""
        self.device.memory.free(region)
