"""Minimal WSDL reader/writer for interface specifications.

The ODF "describes the supported interfaces ... using the standard WSDL
specification language" (Section 3.1).  We support the subset needed to
round-trip :class:`~repro.core.interfaces.InterfaceSpec`: one
``portType`` per interface, one ``operation`` per method, with message
parts typed by a small xsd subset.

Example document::

    <definitions name="Checksum" guid="6060843">
      <portType name="IChecksum">
        <operation name="Compute" result="xsd:int">
          <part name="data" type="xsd:bytes"/>
        </operation>
        <operation name="Reset" oneWay="true"/>
      </portType>
    </definitions>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional

from repro.errors import InterfaceError
from repro.core.guid import guid_from_name, parse_guid
from repro.core.interfaces import InterfaceSpec, MethodSpec, WIRE_TYPES

__all__ = ["parse_wsdl", "write_wsdl"]

_XSD_PREFIX = "xsd:"


def _wire_type(text: str, context: str) -> str:
    name = text[len(_XSD_PREFIX):] if text.startswith(_XSD_PREFIX) else text
    if name not in WIRE_TYPES:
        raise InterfaceError(f"{context}: unknown WSDL type {text!r}")
    return name


def parse_wsdl(source: str) -> InterfaceSpec:
    """Parse a WSDL document (XML string) into an :class:`InterfaceSpec`."""
    try:
        root = ET.fromstring(source)
    except ET.ParseError as exc:
        raise InterfaceError(f"malformed WSDL: {exc}") from None
    if root.tag != "definitions":
        raise InterfaceError(
            f"WSDL root must be <definitions>, got <{root.tag}>")
    port = root.find("portType")
    if port is None:
        raise InterfaceError("WSDL has no <portType>")
    name = port.get("name") or root.get("name")
    if not name:
        raise InterfaceError("WSDL portType needs a name")
    guid_text: Optional[str] = root.get("guid")
    guid = parse_guid(guid_text) if guid_text else guid_from_name(name)

    methods = []
    for op in port.findall("operation"):
        op_name = op.get("name")
        if not op_name:
            raise InterfaceError(f"{name}: operation without a name")
        params = tuple(
            (part.get("name") or f"arg{i}",
             _wire_type(part.get("type", "xsd:any"), f"{name}.{op_name}"))
            for i, part in enumerate(op.findall("part")))
        one_way = (op.get("oneWay", "false").lower() == "true")
        result = "none" if one_way else _wire_type(
            op.get("result", "xsd:none"), f"{name}.{op_name}")
        methods.append(MethodSpec(name=op_name, params=params,
                                  result=result, one_way=one_way))
    return InterfaceSpec(name=name, guid=guid, methods=tuple(methods))


def write_wsdl(spec: InterfaceSpec) -> str:
    """Serialize an :class:`InterfaceSpec` back to a WSDL document."""
    root = ET.Element("definitions",
                      {"name": spec.name, "guid": str(spec.guid.value)})
    port = ET.SubElement(root, "portType", {"name": spec.name})
    for method in spec.methods:
        attrs = {"name": method.name}
        if method.one_way:
            attrs["oneWay"] = "true"
        elif method.result != "none":
            attrs["result"] = _XSD_PREFIX + method.result
        op = ET.SubElement(port, "operation", attrs)
        for pname, ptype in method.params:
            ET.SubElement(op, "part",
                          {"name": pname, "type": _XSD_PREFIX + ptype})
    return ET.tostring(root, encoding="unicode")
