"""Transparent Offcode invocation via proxies.

"Achieving syntactic transparency for Offcode invocation requires the
use of some 'proxy' element that has a similar interface as the target
Offcode.  When a user creates an Offcode, a proxy object is loaded into
user-space.  All interface methods return a Call object that contains
the relevant method information including the serialized input
parameters" (Section 3.1).

Two styles are supported:

* **transparent** — ``yield from proxy.Compute(data)``: attribute access
  resolves against the interface spec, builds the Call, sends it over
  the proxy's channel and decodes the reply;
* **manual** — build the :class:`~repro.core.call.Call` yourself with
  :func:`~repro.core.call.make_call` and push it through any channel
  (``proxy.send_raw``), the paper's "custom encoder" scheme.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import InterfaceError
from repro.core import marshal
from repro.core.call import Call, make_call
from repro.core.channel import Channel, Endpoint
from repro.core.interfaces import InterfaceSpec
from repro.sim.engine import Event

__all__ = ["Proxy"]

# Marshaling cost on the caller's CPU: fixed header work + per-byte.
_MARSHAL_FIXED_NS = 600
_MARSHAL_NS_PER_BYTE = 0.25


class _BoundMethod:
    """A callable proxy method; calling it returns a generator."""

    def __init__(self, proxy: "Proxy", method_name: str) -> None:
        self._proxy = proxy
        self._method_name = method_name

    def __call__(self, *args: Any) -> Generator[Event, None, Any]:
        return self._proxy.invoke(self._method_name, *args)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<proxy method {self._proxy.interface.name}."
                f"{self._method_name}>")


class Proxy:
    """User-space stand-in for a (possibly remote) Offcode interface."""

    def __init__(self, interface: InterfaceSpec, channel: Channel,
                 endpoint: Endpoint) -> None:
        self.interface = interface
        self.channel = channel
        self.endpoint = endpoint
        self.invocations = 0

    def invoke(self, method_name: str, *args: Any
               ) -> Generator[Event, None, Any]:
        """Build, send and (for two-way methods) await one invocation."""
        sim = self.endpoint.site.sim
        call = make_call(sim, self.interface, method_name, args)
        marshal_ns = _MARSHAL_FIXED_NS + round(
            len(call.encoded_args) * _MARSHAL_NS_PER_BYTE)
        yield from self.endpoint.site.execute(marshal_ns, context="proxy")
        encoded = yield from self.channel.send_call(self.endpoint, call)
        self.invocations += 1
        if call.one_way:
            return None
        return marshal.decode(encoded)

    def send_raw(self, call: Call) -> Generator[Event, None, Any]:
        """Manual scheme: send a pre-built Call object."""
        encoded = yield from self.channel.send_call(self.endpoint, call)
        self.invocations += 1
        return None if call.one_way else marshal.decode(encoded)

    def __getattr__(self, name: str) -> _BoundMethod:
        # Only interface methods resolve; anything else is a real miss.
        if name.startswith("_"):
            raise AttributeError(name)
        if self.interface.has_method(name):
            return _BoundMethod(self, name)
        raise InterfaceError(
            f"interface {self.interface.name!r} has no method {name!r}")
