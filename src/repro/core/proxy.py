"""Transparent Offcode invocation via proxies.

"Achieving syntactic transparency for Offcode invocation requires the
use of some 'proxy' element that has a similar interface as the target
Offcode.  When a user creates an Offcode, a proxy object is loaded into
user-space.  All interface methods return a Call object that contains
the relevant method information including the serialized input
parameters" (Section 3.1).

Two styles are supported:

* **transparent** — ``yield from proxy.Compute(data)``: attribute access
  resolves against the interface spec, builds the Call, sends it over
  the proxy's channel and decodes the reply;
* **manual** — build the :class:`~repro.core.call.Call` yourself with
  :func:`~repro.core.call.make_call` and push it through any channel
  (``proxy.send_raw``), the paper's "custom encoder" scheme.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import InterfaceError, RetryBudgetExceededError
from repro.core import marshal
from repro.core.call import Call, CallPolicy, make_call
from repro.core.channel import Channel, Endpoint
from repro.core.interfaces import InterfaceSpec
from repro.sim.engine import Event
from repro.sim.trace import emit as trace_emit

__all__ = ["Proxy"]

# Marshaling cost on the caller's CPU: fixed header work + per-byte.
_MARSHAL_FIXED_NS = 600
_MARSHAL_NS_PER_BYTE = 0.25


class _BoundMethod:
    """A callable proxy method; calling it returns a generator."""

    def __init__(self, proxy: "Proxy", method_name: str) -> None:
        self._proxy = proxy
        self._method_name = method_name

    def __call__(self, *args: Any) -> Generator[Event, None, Any]:
        return self._proxy.invoke(self._method_name, *args)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<proxy method {self._proxy.interface.name}."
                f"{self._method_name}>")


class Proxy:
    """User-space stand-in for a (possibly remote) Offcode interface."""

    def __init__(self, interface: InterfaceSpec, channel: Channel,
                 endpoint: Endpoint,
                 policy: Optional[CallPolicy] = None) -> None:
        self.interface = interface
        self.channel = channel
        self.endpoint = endpoint
        self.policy = policy
        self.invocations = 0
        self.timeouts = 0
        # Migration fence: while a HoldingGate is installed, invoke()
        # parks here before touching the channel (the runtime swaps the
        # channel out underneath the gate during a live migration).
        self.gate = None

    def set_policy(self, policy: Optional[CallPolicy]) -> None:
        """Install (or clear) the deadline/retry policy for this proxy."""
        self.policy = policy

    def rebind(self, channel: Channel) -> None:
        """Point this proxy at a replacement channel (live migration).

        The new channel's creator endpoint must live on the same site as
        the old one: callers holding this proxy keep their site affinity
        and never observe the swap beyond the fence latency.
        """
        self.channel = channel
        self.endpoint = channel.creator_endpoint

    def invoke(self, method_name: str, *args: Any
               ) -> Generator[Event, None, Any]:
        """Build, send and (for two-way methods) await one invocation.

        With a :class:`~repro.core.call.CallPolicy` installed, each
        attempt is deadline-bounded and timed-out attempts are retried
        with backoff; exhausting the budget raises
        :class:`~repro.errors.RetryBudgetExceededError` (a subclass of
        ``OffloadTimeoutError``) instead of hanging the caller.
        """
        if self.gate is not None:
            yield from self.gate.wait()
        if self.policy is not None:
            result = yield from self._invoke_with_policy(method_name, args)
            return result
        sim = self.endpoint.site.sim
        call = make_call(sim, self.interface, method_name, args)
        tel = sim.telemetry
        root = None
        if tel is not None:
            root = tel.begin(f"{self.interface.name}.{method_name}",
                             "proxy", f"site:{self.endpoint.site.name}",
                             method=method_name, one_way=call.one_way)
            call.trace_ctx = root.context
        marshal_ns = _MARSHAL_FIXED_NS + round(
            len(call.encoded_args) * _MARSHAL_NS_PER_BYTE)
        try:
            if tel is not None:
                mspan = tel.begin("marshal", "marshal",
                                  f"site:{self.endpoint.site.name}",
                                  parent=root,
                                  bytes=len(call.encoded_args))
            yield from self.endpoint.site.execute(marshal_ns,
                                                  context="proxy")
            if tel is not None:
                tel.end(mspan)
            encoded = yield from self.channel.send_call(self.endpoint, call)
        finally:
            if tel is not None:
                tel.end(root)
        self.invocations += 1
        if call.one_way:
            return None
        return marshal.decode(encoded)

    def _invoke_with_policy(self, method_name: str, args: tuple
                            ) -> Generator[Event, None, Any]:
        sim = self.endpoint.site.sim
        policy = self.policy
        # Arguments are marshaled exactly once, before the first attempt;
        # retried attempts need a fresh Call (return descriptors are
        # one-shot) but reissue() reuses the cached encoded bytes, so a
        # retry pays only the fixed header cost, not the per-byte encode.
        call = make_call(sim, self.interface, method_name, args)
        tel = sim.telemetry
        root = None
        if tel is not None:
            root = tel.begin(f"{self.interface.name}.{method_name}",
                             "proxy", f"site:{self.endpoint.site.name}",
                             method=method_name, one_way=call.one_way,
                             policy=True)
            call.trace_ctx = root.context
        try:
            result = yield from self._policy_attempts(
                sim, policy, method_name, call, root)
            return result
        finally:
            if tel is not None:
                tel.end(root)

    def _policy_attempts(self, sim, policy: CallPolicy, method_name: str,
                         call: Call, root
                         ) -> Generator[Event, None, Any]:
        tel = sim.telemetry
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                call = call.reissue(sim)
                marshal_ns = _MARSHAL_FIXED_NS
            else:
                marshal_ns = _MARSHAL_FIXED_NS + round(
                    len(call.encoded_args) * _MARSHAL_NS_PER_BYTE)
            if tel is not None:
                mspan = tel.begin("marshal", "marshal",
                                  f"site:{self.endpoint.site.name}",
                                  parent=root, attempt=attempt)
            yield from self.endpoint.site.execute(marshal_ns, context="proxy")
            if tel is not None:
                tel.end(mspan)
            outcome: dict = {}

            def attempt_body(call: Call = call, outcome: dict = outcome
                             ) -> Generator[Event, None, None]:
                try:
                    encoded = yield from self.channel.send_call(
                        self.endpoint, call)
                    outcome["result"] = ("ok", encoded)
                except Exception as exc:
                    outcome["result"] = ("error", exc)

            proc = sim.spawn(
                attempt_body(),
                name=f"proxy-{self.interface.name}.{method_name}-a{attempt}")
            yield sim.any_of([proc, sim.timeout(policy.deadline_ns)])
            if "result" in outcome:
                status, value = outcome["result"]
                if status == "ok":
                    self.invocations += 1
                    return None if call.one_way else marshal.decode(value)
                # Non-timeout failures (remote exception, dead device,
                # closed channel) are not retried — the caller must react.
                raise value
            # Deadline expired.  The attempt process is deliberately left
            # to finish (or never finish) on its own: interrupting it
            # while it waits on the channel sequencer would leak the slot
            # and wedge the channel for everyone else.  Its eventual
            # result lands in an outcome dict nobody reads.
            self.timeouts += 1
            trace_emit(sim, "fault",
                       f"proxy {self.interface.name}.{method_name} attempt "
                       f"{attempt}/{policy.max_attempts} missed deadline",
                       interface=self.interface.name, method=method_name,
                       attempt=attempt, deadline_ns=policy.deadline_ns)
            if attempt < policy.max_attempts:
                yield sim.timeout(policy.backoff_ns(attempt))
        raise RetryBudgetExceededError(
            f"{self.interface.name}.{method_name}: all "
            f"{policy.max_attempts} attempt(s) missed their "
            f"{policy.deadline_ns} ns deadline",
            attempts=policy.max_attempts)

    def send_raw(self, call: Call) -> Generator[Event, None, Any]:
        """Manual scheme: send a pre-built Call object."""
        encoded = yield from self.channel.send_call(self.endpoint, call)
        self.invocations += 1
        return None if call.one_way else marshal.decode(encoded)

    def __getattr__(self, name: str) -> _BoundMethod:
        # Only interface methods resolve; anything else is a real miss.
        if name.startswith("_"):
            raise AttributeError(name)
        if self.interface.has_method(name):
            return _BoundMethod(self, name)
        raise InterfaceError(
            f"interface {self.interface.name!r} has no method {name!r}")
