"""The Channel Executive.

"The Channel Management unit manages the channels by interacting with
the Channel Executive.  This module handles channel creation by using a
particular Channel Provider ... The executive uses this capability
information to decide on the best provider for a specific Offcode"
(Section 4).

Provider selection happens when the channel gains its second endpoint —
only then are both locations known.  Multicast channels require every
additional endpoint to be servable by the already-selected provider.
"""

from __future__ import annotations

import itertools
from typing import List

from repro.errors import ChannelError, ProviderError
from repro.core.channel import Channel, ChannelConfig, ChannelKind, Endpoint
from repro.core.offcode import Offcode
from repro.core.providers import ChannelProvider
from repro.core.sites import ExecutionSite

__all__ = ["ChannelExecutive"]

# Representative message size used to rank providers when the
# application gives no hint (a media packet, the paper's workload unit).
_DEFAULT_SIZE_HINT = 1024


class ChannelExecutive:
    """Provider registry + channel factory for one runtime."""

    def __init__(self) -> None:
        self._providers: List[ChannelProvider] = []
        self._ids = itertools.count(1)
        self.channels: List[Channel] = []

    # -- providers -----------------------------------------------------------------

    def register_provider(self, provider: ChannelProvider) -> None:
        """Add a channel provider to the selection pool."""
        if provider in self._providers:
            raise ProviderError(f"provider {provider.name} already registered")
        self._providers.append(provider)

    @property
    def providers(self) -> List[ChannelProvider]:
        """Registered providers, in registration order (copy)."""
        return list(self._providers)

    def select_provider(self, src: ExecutionSite, dst: ExecutionSite,
                        config: ChannelConfig,
                        size_hint: int = _DEFAULT_SIZE_HINT
                        ) -> ChannelProvider:
        """Best provider for a (src, dst) pair by advertised cost."""
        candidates = [p for p in self._providers
                      if p.can_serve(src, dst, config)]
        if not candidates:
            raise ProviderError(
                f"no channel provider can serve {src.name} -> {dst.name} "
                f"({config.kind.value}, {config.buffering.value})")
        return min(candidates,
                   key=lambda p: p.cost(src, dst, config).score(size_hint))

    # -- channels -------------------------------------------------------------------

    def create_channel(self, config: ChannelConfig,
                       creator_site: ExecutionSite) -> Channel:
        """Step 1 of Figure 3: the creator's endpoint exists; no provider
        is bound until the channel is connected somewhere."""
        channel = Channel(config=config, provider=None,
                          creator_site=creator_site,
                          channel_id=next(self._ids))
        self.channels.append(channel)
        return channel

    def create_channel_for_offcode(self, config: ChannelConfig,
                                   offcode: Offcode) -> Channel:
        """Create a channel whose *creator* endpoint belongs to an
        Offcode (Offcodes open data channels toward their peers, e.g.
        the TiVoPC Streamer's outbound multicast)."""
        channel = self.create_channel(config, offcode.site)
        channel.creator_endpoint.bound_offcode = offcode
        offcode.on_channel_attached(channel)
        return channel

    def connect_site(self, channel: Channel, site: ExecutionSite
                     ) -> Endpoint:
        """Attach a raw site (used for OA-application endpoints)."""
        endpoint = channel.add_endpoint(site)
        self._bind_provider(channel, site)
        return endpoint

    def connect_offcode(self, channel: Channel, offcode: Offcode
                        ) -> Endpoint:
        """Step 2 of Figure 3 / ``ConnectOffcode``: build the endpoint at
        the Offcode's device and notify the Offcode — synchronously for
        wiring, and with a management event over its OOB channel
        (Section 3.2's "availability of other channels")."""
        endpoint = channel.add_endpoint(offcode.site)
        endpoint.bound_offcode = offcode
        self._bind_provider(channel, offcode.site)
        offcode.on_channel_attached(channel)
        self._send_oob_notice(channel, offcode)
        return endpoint

    def _send_oob_notice(self, channel: Channel, offcode: Offcode) -> None:
        oob = offcode.oob_channel
        if oob is None or oob is channel or not oob.connected:
            return
        notice = ("channel-attached", channel.channel_id,
                  channel.config.label)
        sim = offcode.site.sim

        def deliver():
            # Best-effort: nobody awaits this process, and an unwatched
            # failing process would crash the whole simulation — a notice
            # lost to a dying device or closing channel is just lost.
            try:
                yield from oob.creator_endpoint.write(notice, 48)
            except Exception:
                pass

        sim.spawn(deliver(), name=f"oob-notice-{offcode.bindname}")

    def _bind_provider(self, channel: Channel, new_site: ExecutionSite
                       ) -> None:
        creator = channel.creator_endpoint.site
        if channel.provider is None:
            channel.provider = self.select_provider(
                creator, new_site, channel.config)
            channel.provider.on_channel_created(channel)
            return
        # Additional endpoints (multicast): the bound provider must also
        # serve the new leg.
        if channel.config.kind is not ChannelKind.MULTICAST:
            raise ChannelError("unicast channel connected twice")
        if not channel.provider.can_serve(creator, new_site, channel.config):
            raise ProviderError(
                f"provider {channel.provider.name} cannot reach "
                f"{new_site.name} for multicast channel "
                f"#{channel.channel_id}")
