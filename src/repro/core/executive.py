"""The Channel Executive.

"The Channel Management unit manages the channels by interacting with
the Channel Executive.  This module handles channel creation by using a
particular Channel Provider ... The executive uses this capability
information to decide on the best provider for a specific Offcode"
(Section 4).

Provider selection happens when the channel gains its second endpoint —
only then are both locations known.  Multicast channels require every
additional endpoint to be servable by the already-selected provider.

Two performance mechanisms live here as well:

* a **provider-cost cache** keyed by the layout epoch — ranking
  providers is pure given the topology, so the executive memoizes the
  winner per (src, dst, config, size-hint) and invalidates wholesale
  whenever the layout re-solves or a provider registers;
* the **adaptive batcher** (:class:`ChannelBatcher`) attached to every
  channel configured with a :class:`~repro.core.channel.BatchConfig`,
  which coalesces one-way traffic into vectored transactions under load
  and steps aside when traffic is too sparse for coalescing to pay.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.errors import (ChannelError, DeviceFailedError,
                          OffloadTimeoutError, ProviderError,
                          RetryBudgetExceededError)
from repro.core.call import CallBatch, CallPolicy
from repro.core.channel import (BatchConfig, Channel, ChannelConfig,
                                ChannelKind, Endpoint)
from repro.core.offcode import Offcode
from repro.core.providers import ChannelProvider
from repro.core.sites import ExecutionSite
from repro.sim.engine import Event, Simulator

__all__ = ["BatcherStats", "ChannelBatcher", "ChannelExecutive"]

# Representative message size used to rank providers when the
# application gives no hint (a media packet, the paper's workload unit).
_DEFAULT_SIZE_HINT = 1024

# EWMA weight for the batcher's inter-arrival estimator: reactive enough
# to catch a burst within a few messages, smooth enough not to flap.
_EWMA_ALPHA = 0.25


@dataclass(frozen=True)
class BatcherStats:
    """Flush accounting for one channel's batcher.

    ``coalesced`` counts payloads that rode a batch; ``bypassed`` counts
    payloads the adaptive estimator sent down the classic per-message
    path.  The three ``flushed_*`` counters attribute each flush to the
    watermark that tripped it, and ``expired`` counts entries dropped
    because their deadline passed while the batch was retrying.
    """

    coalesced: int
    bypassed: int
    flushed_on_bytes: int
    flushed_on_count: int
    flushed_on_deadline: int
    expired: int

    @property
    def flushes(self) -> int:
        """Total vectored flushes across all causes."""
        return (self.flushed_on_bytes + self.flushed_on_count
                + self.flushed_on_deadline)


class ChannelBatcher:
    """Per-channel adaptive coalescer (the executive's vectored path).

    One pending :class:`~repro.core.call.CallBatch` ring exists per
    source endpoint (per-site rings: entries from different writers never
    interleave into one transaction).  A batch flushes when it reaches
    the byte or count watermark inline, or when its oldest entry has
    waited ``deadline_ns`` (a deadline process armed when the batch
    opens; a generation counter voids stale timers after inline flushes).

    With ``adaptive`` watermarks the batcher tracks the EWMA of the
    source's inter-send gap and *bypasses* coalescing while the batch
    could not plausibly fill within the deadline — paced traffic (a
    22 fps media stream) keeps per-message latency, while bursts get
    vectored.

    A ``policy`` (:class:`~repro.core.call.CallPolicy`) makes a failed
    flush retry *as a unit* with the policy's backoff; before every
    attempt, entries whose per-call deadline has passed are dropped so a
    retried batch never delivers stale calls.
    """

    def __init__(self, channel: Channel, sim: Simulator,
                 config: BatchConfig,
                 policy: Optional[CallPolicy] = None) -> None:
        self.channel = channel
        self.sim = sim
        self.config = config
        self.policy = policy
        self._pending: Dict[int, CallBatch] = {}
        self._sources: Dict[int, Endpoint] = {}
        self._generation: Dict[int, int] = {}
        self._ewma_gap_ns: Dict[int, float] = {}
        self._last_offer_ns: Dict[int, int] = {}
        self.coalesced = 0
        self.bypassed = 0
        self.flushed_on_bytes = 0
        self.flushed_on_count = 0
        self.flushed_on_deadline = 0
        self.expired = 0

    # -- ingest --------------------------------------------------------------------

    def offer(self, source: Endpoint, payload, size_bytes: int
              ) -> Generator[Event, None, bool]:
        """Try to coalesce one payload from ``source``.

        Returns True when the payload was absorbed into a batch (either
        still pending or already flushed); False when the caller should
        take the classic per-message path (adaptive bypass).
        """
        now = self.sim.now
        key = id(source)
        self._observe_gap(key, now)
        pending = self._pending.get(key)
        if pending is None and self._too_sparse(key):
            self.bypassed += 1
            return False
        if pending is None:
            pending = CallBatch()
            self._pending[key] = pending
            self._sources[key] = source
        deadline_at = (now + self.policy.deadline_ns
                       if self.policy is not None else None)
        pending.add(payload, size_bytes, now, deadline_at_ns=deadline_at)
        self.coalesced += 1
        tel = self.sim.telemetry
        if tel is not None:
            tel.instant("batch.enqueue", "batch",
                        self.channel.telemetry_track,
                        parent=getattr(payload, "trace_ctx", None),
                        bytes=size_bytes, pending=pending.count)
        if pending.count >= self.config.max_calls:
            yield from self._flush(key, "count")
        elif pending.payload_bytes >= self.config.max_bytes:
            yield from self._flush(key, "bytes")
        elif pending.count == 1:
            generation = self._generation.get(key, 0)
            self.sim.spawn(self._deadline_watch(key, generation),
                           name=f"batch-deadline-ch{self.channel.channel_id}")
        return True

    def _observe_gap(self, key: int, now: int) -> None:
        last = self._last_offer_ns.get(key)
        self._last_offer_ns[key] = now
        if last is None:
            return
        gap = now - last
        ewma = self._ewma_gap_ns.get(key)
        self._ewma_gap_ns[key] = (
            gap if ewma is None
            else _EWMA_ALPHA * gap + (1.0 - _EWMA_ALPHA) * ewma)

    def _too_sparse(self, key: int) -> bool:
        if not self.config.adaptive:
            return False
        ewma = self._ewma_gap_ns.get(key)
        if ewma is None:
            # No history yet: assume sparse (first messages keep latency).
            return True
        # Sparse means a full batch cannot form within the deadline.
        return ewma * self.config.max_calls > self.config.deadline_ns

    # -- flushing -------------------------------------------------------------------

    def _deadline_watch(self, key: int, generation: int
                        ) -> Generator[Event, None, None]:
        yield self.sim.timeout(self.config.deadline_ns)
        if self._generation.get(key, 0) != generation:
            return  # an inline flush already moved this batch
        if self._pending.get(key):
            try:
                yield from self._flush(key, "deadline")
            except (RetryBudgetExceededError, ChannelError):
                # Nobody awaits a background flush; the lost entries
                # were already charged to the channel's drop counter.
                # ChannelError covers a channel closed (or a noise-armed
                # reliable channel giving up) under the watch's feet —
                # an unwatched raise here would crash the simulator.
                pass

    def _flush(self, key: int, cause: str
               ) -> Generator[Event, None, None]:
        batch = self._pending.pop(key, None)
        self._generation[key] = self._generation.get(key, 0) + 1
        if batch is None or batch.count == 0:
            return
        source = self._sources[key]
        if cause == "bytes":
            self.flushed_on_bytes += 1
        elif cause == "count":
            self.flushed_on_count += 1
        else:
            self.flushed_on_deadline += 1
        tel = self.sim.telemetry
        span = token = None
        if tel is not None:
            span = tel.begin("batch.flush", "batch",
                             self.channel.telemetry_track, cause=cause,
                             count=batch.count, bytes=batch.payload_bytes)
            token = tel.push_ctx(span.context)
        try:
            attempt = 1
            while True:
                self.expired += len(batch.drop_expired(self.sim.now))
                if batch.count == 0:
                    return
                try:
                    yield from self.channel.send_vectored(source, batch)
                    return
                except (DeviceFailedError, OffloadTimeoutError) as exc:
                    # A batch retries as a unit (one transaction either
                    # lands or doesn't); per-entry deadlines are
                    # re-checked above before the next attempt goes out.
                    if (self.policy is None
                            or attempt >= self.policy.max_attempts):
                        self.channel.drops += batch.count
                        raise RetryBudgetExceededError(
                            f"batch flush on channel "
                            f"#{self.channel.channel_id} failed after "
                            f"{attempt} attempt(s): {exc}") from exc
                    yield self.sim.timeout(self.policy.backoff_ns(attempt))
                    attempt += 1
        finally:
            if span is not None:
                tel.pop_ctx(token)
                tel.end(span)

    def flush_all(self) -> Generator[Event, None, None]:
        """Force every pending batch out (quiesce point for tests and
        teardown)."""
        for key in list(self._pending.keys()):
            if self._pending.get(key):
                yield from self._flush(key, "deadline")

    @property
    def pending_entries(self) -> int:
        """Entries currently waiting in pending batches."""
        return sum(b.count for b in self._pending.values())

    def stats(self) -> BatcherStats:
        """Current :class:`BatcherStats` snapshot."""
        return BatcherStats(
            coalesced=self.coalesced, bypassed=self.bypassed,
            flushed_on_bytes=self.flushed_on_bytes,
            flushed_on_count=self.flushed_on_count,
            flushed_on_deadline=self.flushed_on_deadline,
            expired=self.expired)


class ChannelExecutive:
    """Provider registry + channel factory for one runtime."""

    def __init__(self) -> None:
        self._providers: List[ChannelProvider] = []
        self._ids = itertools.count(1)
        self.channels: List[Channel] = []
        # Provider-cost memo, valid for exactly one layout epoch.
        self._cost_cache: Dict[Tuple, ChannelProvider] = {}
        self.layout_epoch = 0
        self.cost_cache_hits = 0
        self.cost_cache_misses = 0
        # Priority-aware admission control (the supervisor's brownout
        # lever).  Stamped onto every channel at creation; None = no
        # shedding, ever.
        self.admission = None

    def set_admission(self, controller) -> None:
        """Attach an admission controller to present and future channels."""
        self.admission = controller
        for channel in self.channels:
            channel._admission = controller

    # -- providers -----------------------------------------------------------------

    def register_provider(self, provider: ChannelProvider) -> None:
        """Add a channel provider to the selection pool."""
        if provider in self._providers:
            raise ProviderError(f"provider {provider.name} already registered")
        self._providers.append(provider)
        # A new provider can beat any cached winner.
        self.invalidate_cost_cache()

    def invalidate_cost_cache(self) -> None:
        """Advance the layout epoch and drop every memoized ranking.

        Called whenever the answer to "cheapest provider for this pair"
        may have changed: a layout re-solve moved Offcodes between
        sites, or a provider joined the pool.
        """
        self.layout_epoch += 1
        self._cost_cache.clear()

    @property
    def providers(self) -> List[ChannelProvider]:
        """Registered providers, in registration order (copy)."""
        return list(self._providers)

    def select_provider(self, src: ExecutionSite, dst: ExecutionSite,
                        config: ChannelConfig,
                        size_hint: int = _DEFAULT_SIZE_HINT
                        ) -> ChannelProvider:
        """Best provider for a (src, dst) pair by advertised cost.

        Rankings are memoized per layout epoch: the cache key carries
        every config facet that prices differently, and the epoch bump
        in :meth:`invalidate_cost_cache` retires the whole memo when a
        re-solve changes the topology.
        """
        key = (src.name, dst.name, config.kind, config.reliability,
               config.sync, config.buffering, config.preferred_provider,
               size_hint)
        cached = self._cost_cache.get(key)
        if cached is not None and cached.can_serve(src, dst, config):
            self.cost_cache_hits += 1
            return cached
        candidates = [p for p in self._providers
                      if p.can_serve(src, dst, config)]
        if config.preferred_provider is not None:
            candidates = [p for p in candidates
                          if p.name == config.preferred_provider]
            if not candidates:
                raise ProviderError(
                    f"pinned provider {config.preferred_provider!r} "
                    f"cannot serve {src.name} -> {dst.name}")
        if not candidates:
            raise ProviderError(
                f"no channel provider can serve {src.name} -> {dst.name} "
                f"({config.kind.value}, {config.buffering.value})")
        best = min(candidates,
                   key=lambda p: p.cost(src, dst, config).score(size_hint))
        self._cost_cache[key] = best
        self.cost_cache_misses += 1
        return best

    # -- channels -------------------------------------------------------------------

    def create_channel(self, config: ChannelConfig,
                       creator_site: ExecutionSite) -> Channel:
        """Step 1 of Figure 3: the creator's endpoint exists; no provider
        is bound until the channel is connected somewhere.  Configs that
        carry a :class:`~repro.core.channel.BatchConfig` get an adaptive
        :class:`ChannelBatcher` attached here."""
        channel = Channel(config=config, provider=None,
                          creator_site=creator_site,
                          channel_id=next(self._ids))
        if config.batch is not None:
            channel.batcher = ChannelBatcher(channel, creator_site.sim,
                                             config.batch)
        channel._admission = self.admission
        self.channels.append(channel)
        return channel

    def create_channel_for_offcode(self, config: ChannelConfig,
                                   offcode: Offcode) -> Channel:
        """Create a channel whose *creator* endpoint belongs to an
        Offcode (Offcodes open data channels toward their peers, e.g.
        the TiVoPC Streamer's outbound multicast)."""
        channel = self.create_channel(config, offcode.site)
        channel.creator_endpoint.bound_offcode = offcode
        offcode.on_channel_attached(channel)
        return channel

    def connect_site(self, channel: Channel, site: ExecutionSite
                     ) -> Endpoint:
        """Attach a raw site (used for OA-application endpoints)."""
        endpoint = channel.add_endpoint(site)
        self._bind_provider(channel, site)
        return endpoint

    def connect_offcode(self, channel: Channel, offcode: Offcode
                        ) -> Endpoint:
        """Step 2 of Figure 3 / ``ConnectOffcode``: build the endpoint at
        the Offcode's device and notify the Offcode — synchronously for
        wiring, and with a management event over its OOB channel
        (Section 3.2's "availability of other channels")."""
        endpoint = channel.add_endpoint(offcode.site)
        endpoint.bound_offcode = offcode
        self._bind_provider(channel, offcode.site)
        offcode.on_channel_attached(channel)
        self._send_oob_notice(channel, offcode)
        return endpoint

    def _send_oob_notice(self, channel: Channel, offcode: Offcode) -> None:
        oob = offcode.oob_channel
        if oob is None or oob is channel or not oob.connected:
            return
        notice = ("channel-attached", channel.channel_id,
                  channel.config.label)
        sim = offcode.site.sim

        def deliver():
            # Best-effort: nobody awaits this process, and an unwatched
            # failing process would crash the whole simulation — a notice
            # lost to a dying device or closing channel is just lost.
            try:
                yield from oob.creator_endpoint.write(notice, 48)
            except Exception:
                pass

        sim.spawn(deliver(), name=f"oob-notice-{offcode.bindname}")

    def _bind_provider(self, channel: Channel, new_site: ExecutionSite
                       ) -> None:
        creator = channel.creator_endpoint.site
        if channel.provider is None:
            channel.provider = self.select_provider(
                creator, new_site, channel.config)
            channel.provider.on_channel_created(channel)
            return
        # Additional endpoints (multicast): the bound provider must also
        # serve the new leg.
        if channel.config.kind is not ChannelKind.MULTICAST:
            raise ChannelError("unicast channel connected twice")
        if not channel.provider.can_serve(creator, new_site, channel.config):
            raise ProviderError(
                f"provider {channel.provider.name} cannot reach "
                f"{new_site.name} for multicast channel "
                f"#{channel.channel_id}")
