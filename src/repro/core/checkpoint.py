"""Offcode checkpoint/restore — failure transparency for device deaths.

The paper's Resource Management survives a device failure by tearing the
victim Offcodes down and re-deploying them on a fallback site; without
help, the replacements start cold and the component's accumulated state
dies with the device.  This module adds the help: a
:class:`CheckpointService` periodically asks every checkpointable
Offcode (one that overrides :meth:`~repro.core.offcode.Offcode.snapshot`)
for a marshal-encodable state snapshot, charges the snapshot cost on the
Offcode's own site, and ships the result over the *OOB channel* — the
same low-priority management pathway the runtime already maintains to
every Offcode — to a host-side :class:`CheckpointStore` hanging off the
Offcode Depot.  After a failure, recovery restores the last shipped
checkpoint into the re-deployed instance before the application's
recovery hooks rewire data channels, so a NIC death mid-stream resumes
from the last snapshot instead of from zero.

Checkpoints are best-effort by design: a snapshot that cannot be shipped
(device died mid-transfer, OOB channel closed) is dropped and retried at
the next period, never allowed to wedge the service or the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from repro.errors import HydraError
from repro.core import marshal
from repro.core.offcode import Offcode, OffcodeState
from repro.sim.engine import Event
from repro.sim.trace import emit as trace_emit

__all__ = ["Checkpoint", "CheckpointConfig", "CheckpointService",
           "CheckpointStore", "checkpointable", "capture_checkpoint"]


@dataclass(frozen=True)
class CheckpointConfig:
    """Knobs for the periodic checkpoint service.

    ``period_ns`` bounds the state a failure can lose (at most one
    period's worth); ``snapshot_cost_ns`` is charged on the Offcode's
    site per snapshot (quiescing and serializing are not free);
    ``header_bytes`` is the OOB framing overhead added to the encoded
    state size on the wire.
    """

    period_ns: int = 50_000_000          # 50 ms
    snapshot_cost_ns: int = 20_000
    header_bytes: int = 64

    def __post_init__(self) -> None:
        if self.period_ns <= 0:
            raise HydraError(
                f"checkpoint period_ns must be positive: {self.period_ns}")
        if self.snapshot_cost_ns < 0:
            raise HydraError(
                f"negative snapshot_cost_ns: {self.snapshot_cost_ns}")


@dataclass(frozen=True)
class Checkpoint:
    """One shipped state snapshot."""

    bindname: str
    seq: int
    taken_at_ns: int
    state: Any
    size_bytes: int = 0


class CheckpointStore:
    """Latest checkpoint per bindname, host-side (lives in the depot)."""

    def __init__(self) -> None:
        self._latest: Dict[str, Checkpoint] = {}
        self.saved = 0

    def save(self, checkpoint: Checkpoint) -> None:
        """Keep ``checkpoint`` if it is as new as the one we hold."""
        current = self._latest.get(checkpoint.bindname)
        if current is None or checkpoint.seq >= current.seq:
            self._latest[checkpoint.bindname] = checkpoint
        self.saved += 1

    def latest(self, bindname: str) -> Optional[Checkpoint]:
        """The most recent checkpoint for ``bindname`` (None if never)."""
        return self._latest.get(bindname)

    def forget(self, bindname: str) -> None:
        """Drop the checkpoint for ``bindname`` (post-restore hygiene is
        *not* wanted — keep it so repeated failures restore too — but
        tests and stop paths may clear)."""
        self._latest.pop(bindname, None)

    def bindnames(self) -> List[str]:
        """Bindnames with at least one stored checkpoint."""
        return sorted(self._latest)

    def __len__(self) -> int:
        return len(self._latest)


def checkpointable(offcode: Offcode) -> bool:
    """True when ``offcode``'s class opted into the snapshot contract."""
    return type(offcode).snapshot is not Offcode.snapshot


def capture_checkpoint(runtime, offcode: Offcode,
                       config: Optional[CheckpointConfig] = None
                       ) -> Generator[Event, None, Any]:
    """On-demand synchronous snapshot, for the live-migration path.

    Unlike the periodic service, the caller here is the host-side
    runtime holding the offcode quiesced: the snapshot cost is charged
    on the offcode's site, but the state is saved into the host store
    directly (the orchestrator reads it through the management path —
    no OOB hop to lose mid-cutover).  The sequence number is bumped past
    whatever the store holds, so the migration snapshot always wins over
    an older periodic one, and the periodic service's next shipment
    (one past its own counter) still lands.

    Returns the captured state, or ``None`` when the offcode does not
    participate in the snapshot contract (cold migration).
    """
    if not checkpointable(offcode):
        return None
    if config is None:
        service = getattr(runtime, "checkpointer", None)
        config = service.config if service is not None else CheckpointConfig()
    yield from offcode.site.execute(
        config.snapshot_cost_ns,
        context=f"{offcode.bindname}-migrate-snapshot")
    state = offcode.snapshot()
    if state is None:
        return None
    store: CheckpointStore = runtime.depot.checkpoints
    latest = store.latest(offcode.bindname)
    seq = (latest.seq if latest is not None else 0) + 1
    try:
        size = config.header_bytes + len(marshal.encode(state))
    except Exception:
        size = config.header_bytes + 256
    store.save(Checkpoint(
        bindname=offcode.bindname, seq=seq,
        taken_at_ns=runtime.sim.now, state=state, size_bytes=size))
    return state


class CheckpointService:
    """Ships periodic Offcode snapshots over OOB to the host depot."""

    def __init__(self, runtime, config: Optional[CheckpointConfig] = None
                 ) -> None:
        self.runtime = runtime
        self.config = config or CheckpointConfig()
        self.store: CheckpointStore = runtime.depot.checkpoints
        self.shipped = 0
        self.failed = 0
        self.stray_messages: List[Any] = []
        self._seqs: Dict[str, int] = {}
        self._process = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self):
        """Spawn the periodic ticker (idempotence guarded)."""
        if self._process is not None:
            raise HydraError("checkpoint service already started")
        self._process = self.runtime.sim.spawn(
            self._tick(), name="checkpointer")
        return self._process

    def _tick(self) -> Generator[Event, None, None]:
        sim = self.runtime.sim
        while True:
            yield sim.timeout(self.config.period_ns)
            for offcode in self.runtime.deployed_offcodes():
                if checkpointable(offcode):
                    # Disposable per-offcode process: a device dying
                    # mid-snapshot must not take the ticker with it.
                    sim.spawn(self._checkpoint_one(offcode),
                              name=f"checkpoint-{offcode.bindname}")

    # -- the shipping path -------------------------------------------------------

    def _checkpoint_one(self, offcode: Offcode
                        ) -> Generator[Event, None, None]:
        sim = self.runtime.sim
        try:
            if offcode.state != OffcodeState.RUNNING:
                return
            channel = offcode.oob_channel
            if channel is None or channel.closed or not channel.connected:
                return
            self._ensure_collector(channel)
            yield from offcode.site.execute(
                self.config.snapshot_cost_ns,
                context=f"{offcode.bindname}-snapshot")
            state = offcode.snapshot()
            if state is None:
                return
            seq = self._seqs.get(offcode.bindname, 0) + 1
            self._seqs[offcode.bindname] = seq
            try:
                size = self.config.header_bytes + len(marshal.encode(state))
            except Exception:
                size = self.config.header_bytes + 256
            endpoint = channel.endpoint_of(offcode)
            yield from endpoint.write(
                ("checkpoint", offcode.bindname, seq, state), size)
            self.shipped += 1
        except Exception as exc:
            self.failed += 1
            trace_emit(sim, "fault",
                       f"checkpoint of {offcode.bindname} failed: {exc!r}",
                       offcode=offcode.bindname)

    def _ensure_collector(self, channel) -> None:
        """Install the host-side collector on the OOB creator endpoint.

        The runtime only ever *writes* host-to-device on OOB channels, so
        the creator endpoint has no reader; without a collector a
        device-to-host checkpoint write would fill the ring and wedge.
        """
        endpoint = channel.creator_endpoint
        if endpoint._handler is None:
            endpoint.install_call_handler(self._collect)

    def _collect(self, message) -> None:
        payload = message.payload
        if (isinstance(payload, tuple) and len(payload) == 4
                and payload[0] == "checkpoint"):
            _, bindname, seq, state = payload
            self.store.save(Checkpoint(
                bindname=bindname, seq=seq,
                taken_at_ns=message.sent_at_ns, state=state,
                size_bytes=message.size_bytes))
            return
        self.stray_messages.append(payload)
