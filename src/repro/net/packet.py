"""Network packet representation.

Packets carry a payload *size* plus an arbitrary payload object; the
simulation moves costs, not bytes.  Wire occupancy includes Ethernet,
IP and UDP headers so that link serialization times are realistic for
the paper's 1 kB datagrams.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Address", "Packet", "ETH_IP_UDP_HEADER_BYTES", "MAX_UDP_PAYLOAD"]

# 14 (Ethernet) + 20 (IPv4) + 8 (UDP) = 42 bytes of headers per datagram.
ETH_IP_UDP_HEADER_BYTES = 42
MAX_UDP_PAYLOAD = 65_507

_seq_counter = itertools.count()


@dataclass(frozen=True, order=True)
class Address:
    """A (host, port) network address."""

    host: str
    port: int

    def __post_init__(self) -> None:
        if not self.host:
            raise ValueError("address host must be non-empty")
        if not 0 < self.port < 65536:
            raise ValueError(f"port out of range: {self.port}")

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


@dataclass
class Packet:
    """A UDP datagram in flight."""

    src: Address
    dst: Address
    size_bytes: int
    payload: Any = None
    seq: int = field(default_factory=lambda: next(_seq_counter))
    sent_at_ns: Optional[int] = None
    received_at_ns: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"negative payload size: {self.size_bytes}")
        if self.size_bytes > MAX_UDP_PAYLOAD:
            raise ValueError(
                f"payload {self.size_bytes} exceeds max UDP datagram")

    @property
    def wire_bytes(self) -> int:
        """Bytes occupying the wire, headers included."""
        return self.size_bytes + ETH_IP_UDP_HEADER_BYTES

    def flow(self) -> tuple:
        """The 4-tuple identifying this packet's flow.

        What an in-network header handler keys its per-flow state on
        (the 5-tuple minus the protocol, which is always UDP here).
        """
        return (self.src.host, self.src.port, self.dst.host, self.dst.port)

    def latency_ns(self) -> Optional[int]:
        """received - sent timestamps, or None if either is unset."""
        if self.sent_at_ns is None or self.received_at_ns is None:
            return None
        return self.received_at_ns - self.sent_at_ns

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Packet #{self.seq} {self.src}->{self.dst} "
                f"{self.size_bytes}B>")
