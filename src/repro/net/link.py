"""Point-to-point link model.

A :class:`Link` is a unidirectional wire with finite bandwidth,
propagation delay and optional per-packet jitter.  Serialization is
FIFO: while one frame is on the wire the next waits, which is how
back-to-back datagrams from a bursty sender spread out in time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro import units
from repro.errors import SimulationError
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.resources import Resource

__all__ = ["LinkSpec", "Link"]


@dataclass(frozen=True)
class LinkSpec:
    """Static link parameters (defaults: gigabit Ethernet, short run)."""

    bandwidth_bps: float = 1.0e9
    propagation_ns: int = 2_000          # a few hundred metres of cable + PHY
    jitter_sigma_ns: int = 500           # PHY/serialization micro-jitter

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise SimulationError("link bandwidth must be positive")
        if self.propagation_ns < 0 or self.jitter_sigma_ns < 0:
            raise SimulationError("link delays must be non-negative")


class Link:
    """Unidirectional FIFO wire delivering packets to a sink callable."""

    def __init__(self, sim: Simulator, deliver: Callable[[Packet], None],
                 spec: Optional[LinkSpec] = None,
                 rng: Optional[random.Random] = None,
                 name: str = "link") -> None:
        self.sim = sim
        self.spec = spec or LinkSpec()
        self.deliver = deliver
        self.rng = rng or random.Random(0)
        self.name = name
        self._wire = Resource(sim, capacity=1)
        self.packets_carried = 0
        self.bytes_carried = 0

    def send(self, packet: Packet) -> None:
        """Begin transmitting ``packet`` (returns immediately)."""
        self.sim.spawn(self._carry(packet), name=f"{self.name}-tx")

    def _carry(self, packet: Packet):
        yield self._wire.request()
        try:
            yield self.sim.timeout(self.serialization_ns(packet))
        finally:
            self._wire.release()
        # Propagation happens off the wire; the next frame can start.
        delay = self.spec.propagation_ns
        if self.spec.jitter_sigma_ns:
            delay += abs(round(self.rng.gauss(0, self.spec.jitter_sigma_ns)))
        yield self.sim.timeout(delay)
        self.packets_carried += 1
        self.bytes_carried += packet.wire_bytes
        self.deliver(packet)

    def serialization_ns(self, packet: Packet) -> int:
        """Wire occupancy of one packet at this bandwidth."""
        return units.transfer_time_ns(packet.wire_bytes,
                                      self.spec.bandwidth_bps)

    def utilization(self, since: int = 0) -> float:
        """Fraction of wall time the wire carried bits."""
        return self._wire.utilization(since)
