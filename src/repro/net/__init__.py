"""Network substrate: packets, links and a gigabit switch.

Substitutes for the testbed's physical network (gigabit Ethernet through
a Dell PowerConnect 6024 switch); see DESIGN.md §2.
"""

from repro.net.devport import DeviceNetPort, DevicePortBinding
from repro.net.link import Link, LinkSpec
from repro.net.packet import (
    Address,
    ETH_IP_UDP_HEADER_BYTES,
    MAX_UDP_PAYLOAD,
    Packet,
)
from repro.net.switch import Switch, SwitchSpec

__all__ = [
    "Address",
    "DeviceNetPort",
    "DevicePortBinding",
    "ETH_IP_UDP_HEADER_BYTES",
    "Link",
    "LinkSpec",
    "MAX_UDP_PAYLOAD",
    "Packet",
    "Switch",
    "SwitchSpec",
]
