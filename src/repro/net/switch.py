"""Store-and-forward Ethernet switch.

Models the testbed's Dell PowerConnect 6024 gigabit switch: every
attached station gets an ingress and an egress :class:`Link`; the switch
forwards by destination host name after a fixed forwarding latency.
Frames to unknown destinations are dropped and counted (a real switch
would flood; for our closed experiments a drop is a configuration bug
worth surfacing).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.errors import SimulationError
from repro.net.link import Link, LinkSpec
from repro.net.packet import Packet
from repro.sim.engine import Simulator

__all__ = ["SwitchSpec", "Switch"]


@dataclass(frozen=True)
class SwitchSpec:
    """Static switch parameters."""

    forwarding_ns: int = 4_000            # store-and-forward + lookup
    link: LinkSpec = field(default_factory=LinkSpec)

    def __post_init__(self) -> None:
        if self.forwarding_ns < 0:
            raise SimulationError("forwarding latency must be non-negative")


class Switch:
    """A gigabit switch interconnecting named stations."""

    def __init__(self, sim: Simulator, spec: Optional[SwitchSpec] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.sim = sim
        self.spec = spec or SwitchSpec()
        self.rng = rng or random.Random(0)
        self._ingress: Dict[str, Link] = {}
        self._egress: Dict[str, Link] = {}
        self._sinks: Dict[str, Callable[[Packet], None]] = {}
        self.forwarded = 0
        self.dropped_unknown = 0

    def attach(self, host: str, deliver: Callable[[Packet], None]
               ) -> Callable[[Packet], None]:
        """Connect a station; returns its transmit function.

        ``deliver(packet)`` is called for frames destined to ``host``.
        The returned callable puts a frame on the station's uplink.
        """
        if host in self._sinks:
            raise SimulationError(f"station {host!r} already attached")
        self._sinks[host] = deliver
        self._ingress[host] = Link(
            self.sim, self._forward, self.spec.link,
            rng=self.rng, name=f"up-{host}")
        self._egress[host] = Link(
            self.sim, self._deliver_local, self.spec.link,
            rng=self.rng, name=f"down-{host}")
        return self._ingress[host].send

    def stations(self):
        """Attached station names, sorted."""
        return sorted(self._sinks)

    # -- forwarding ------------------------------------------------------------

    def _forward(self, packet: Packet) -> None:
        self.sim.spawn(self._forward_proc(packet), name="switch-fwd")

    def _forward_proc(self, packet: Packet):
        yield self.sim.timeout(self.spec.forwarding_ns)
        egress = self._egress.get(packet.dst.host)
        if egress is None:
            self.dropped_unknown += 1
            return
        self.forwarded += 1
        egress.send(packet)

    def _deliver_local(self, packet: Packet) -> None:
        sink = self._sinks.get(packet.dst.host)
        if sink is not None:
            sink(packet)
