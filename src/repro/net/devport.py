"""Device-side network port.

The paper's "Smart Disk" is a programmable NIC exporting a block device
whose NFS client runs entirely in device firmware (Section 6.1), and the
offloaded Video Server's Broadcast Offcode likewise transmits straight
from the NIC.  Both need networking that never enters the host kernel.

:class:`DeviceNetPort` gives any programmable device its own station on
a switch: outbound packets are charged to the *device* CPU and put on
the wire directly; inbound packets are demultiplexed by destination port
into device-local queues.  No host CPU time, no host memory crossing.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.errors import DeviceFailedError, SocketError
from repro.hw.device import ProgrammableDevice
from repro.net.packet import Address, Packet
from repro.net.switch import Switch
from repro.sim.engine import Event
from repro.sim.resources import Store

__all__ = ["DeviceNetPort", "DevicePortBinding", "NicPortMux"]

# Firmware cost to build / parse a datagram on the device CPU.
_TX_FIRMWARE_NS = 2_000
_RX_FIRMWARE_NS = 1_800


class DevicePortBinding:
    """One bound port on a device port: a queue of received packets."""

    def __init__(self, port: "DeviceNetPort", number: int) -> None:
        self.port = port
        self.number = number
        self.queue: Store = Store(port.device.sim, capacity=512,
                                  drop_when_full=True)

    @property
    def address(self) -> Address:
        """The (station, port) address of this binding."""
        return Address(self.port.station, self.number)

    def recv(self) -> Generator[Event, None, Packet]:
        """Device process: wait for the next datagram on this port."""
        packet: Packet = yield self.queue.get()
        return packet


class DeviceNetPort:
    """A switch station owned by device firmware rather than a host."""

    def __init__(self, device: ProgrammableDevice, switch: Switch,
                 station: str) -> None:
        self.device = device
        self.station = station
        self._bindings: Dict[int, DevicePortBinding] = {}
        self._next_ephemeral = 40000
        self._transmit = switch.attach(station, self._on_wire_rx)
        self.tx_packets = 0
        self.rx_packets = 0
        self.rx_unclaimed = 0
        self.rx_dropped_dead = 0

    # -- binding ---------------------------------------------------------------

    def bind(self, port: Optional[int] = None) -> DevicePortBinding:
        """Bind a firmware port (ephemeral when ``port`` is None)."""
        if port is None:
            while self._next_ephemeral in self._bindings:
                self._next_ephemeral += 1
            port = self._next_ephemeral
            self._next_ephemeral += 1
        if port in self._bindings:
            raise SocketError(f"{self.station}: device port {port} bound")
        binding = DevicePortBinding(self, port)
        self._bindings[port] = binding
        return binding

    # -- transmit ----------------------------------------------------------------

    def send(self, src_port: int, dst: Address, size_bytes: int, payload=None
             ) -> Generator[Event, None, Packet]:
        """Device process: transmit a datagram from device memory."""
        packet = Packet(src=Address(self.station, src_port), dst=dst,
                        size_bytes=size_bytes, payload=payload)
        packet.sent_at_ns = self.device.sim.now
        yield from self.device.run_on_device(_TX_FIRMWARE_NS,
                                             context="devnet-tx")
        self.tx_packets += 1
        self._transmit(packet)
        return packet

    # -- receive -----------------------------------------------------------------

    def _on_wire_rx(self, packet: Packet) -> None:
        self.device.sim.spawn(self._rx_proc(packet),
                              name=f"{self.station}-devrx")

    def _rx_proc(self, packet: Packet) -> Generator[Event, None, None]:
        try:
            yield from self.device.run_on_device(_RX_FIRMWARE_NS,
                                                 context="devnet-rx")
        except DeviceFailedError:
            # The device CPU died under this frame: lose the frame, not
            # the simulation (nobody awaits wire-delivery processes).
            self.rx_dropped_dead += 1
            return
        packet.received_at_ns = self.device.sim.now
        binding = self._bindings.get(packet.dst.port)
        if binding is None:
            self.rx_unclaimed += 1
            return
        self.rx_packets += 1
        yield binding.queue.put(packet)


class NicPortMux:
    """Firmware port table on a *host-attached* NIC.

    A host's NIC is already a switch station under the host's name; when
    Offcodes run *on* that NIC they must share the wire with the host
    stack.  The mux installs itself as the NIC's receive-offload handler
    and claims exactly the ports its Offcodes bound — every other frame
    falls through to the normal host path (DMA + interrupt), so the host
    keeps working undisturbed.  Outbound frames leave straight from
    device memory (``transmit_from_device``), never crossing the bus.

    This is the networking arrangement of the paper's offloaded Video
    Server: the Broadcast and File Offcodes at the 3Com NIC talk UDP/NFS
    through the same port the host uses, with zero host involvement.

    The interface matches :class:`DeviceNetPort` (``bind``, ``send``,
    ``device``) so :class:`repro.hostos.nfs.DeviceNfsClient` works over
    either.
    """

    def __init__(self, nic, station: str) -> None:
        """``station`` is the host's switch name (frames the mux sends
        carry it as their source host)."""
        self.nic = nic
        self.device = nic
        self.station = station
        self._bindings: Dict[int, DevicePortBinding] = {}
        self._next_ephemeral = 45000
        self.tx_packets = 0
        self.rx_packets = 0
        nic.install_rx_offload(self._rx_handler)

    def bind(self, port: Optional[int] = None) -> DevicePortBinding:
        """Claim a port on the shared NIC for firmware consumption."""
        if port is None:
            while self._next_ephemeral in self._bindings:
                self._next_ephemeral += 1
            port = self._next_ephemeral
            self._next_ephemeral += 1
        if port in self._bindings:
            raise SocketError(
                f"{self.station}: firmware port {port} already bound")
        binding = DevicePortBinding(self, port)
        self._bindings[port] = binding
        return binding

    def send(self, src_port: int, dst: Address, size_bytes: int, payload=None
             ) -> Generator[Event, None, Packet]:
        """Device process: transmit from device memory, host untouched."""
        packet = Packet(src=Address(self.station, src_port), dst=dst,
                        size_bytes=size_bytes, payload=payload)
        packet.sent_at_ns = self.nic.sim.now
        yield from self.nic.transmit_from_device(packet)
        self.tx_packets += 1
        return packet

    def claim(self, port: int) -> DevicePortBinding:
        """Bind ``port``, or take over an existing binding (migration).

        A live-migrated Offcode lands on a new site but must keep
        receiving the stream already flowing to its port; the binding's
        queue keeps buffering during the cutover, so re-claiming it loses
        nothing.  The previous consumer's parked ``get`` is purged first:
        its process is dead, and a stale getter would silently eat the
        next packet handed to it (see :meth:`Store.forget_getters`).
        """
        binding = self._bindings.get(port)
        if binding is None:
            return self.bind(port)
        binding.queue.forget_getters()
        return binding

    def release(self, port: int) -> None:
        """Drop a port claim so frames fall through to the host path.

        Called when an Offcode migrates *off* every firmware consumer of
        this mux (e.g. to the host): a still-claimed port would keep
        intercepting frames into a queue nobody reads.
        """
        self._bindings.pop(port, None)

    def _rx_handler(self, packet: Packet):
        """NIC rx-offload hook: claim bound ports, decline the rest."""
        binding = self._bindings.get(packet.dst.port)
        if binding is None:
            return False
            yield  # pragma: no cover - makes this a generator function
        packet.received_at_ns = self.nic.sim.now
        self.rx_packets += 1
        yield binding.queue.put(packet)
        return True
