"""Media substrate: synthetic MPEG streams and decode cost models."""

from repro.media.decoder import (
    DECODE_EXPANSION,
    SoftwareDecoder,
    SoftwareDecoderConfig,
)
from repro.media.mpeg import (
    Frame,
    FrameType,
    GopConfig,
    GopGenerator,
    StreamConfig,
    chunk_schedule,
)

__all__ = [
    "DECODE_EXPANSION",
    "Frame",
    "FrameType",
    "GopConfig",
    "GopGenerator",
    "SoftwareDecoder",
    "SoftwareDecoderConfig",
    "StreamConfig",
    "chunk_schedule",
]
