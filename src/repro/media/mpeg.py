"""Synthetic MPEG-like stream model.

The TiVoPC Streamer "extracts the payload that contains the three types
of MPEG frames: the I-frame, P-frame and B-frame" (Section 6.2).  The
evaluation, however, deliberately streams the movie as fixed 1 kB chunks
at a constant bit rate ("for demonstration purposes only, we did not
send packets at video frame boundaries").  This module provides both
views:

* :class:`GopGenerator` — a deterministic group-of-pictures sequence
  (IBBPBBPBB...) with realistic relative frame sizes, used by decoder
  placement experiments and the examples;
* :func:`chunk_schedule` — the evaluation's workload: 1 kB chunks every
  5 ms for a 200 kB/s stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro import units
from repro.errors import ReproError

__all__ = ["FrameType", "Frame", "GopConfig", "GopGenerator",
           "StreamConfig", "chunk_schedule"]


class FrameType:
    """MPEG frame-type tags (Section 6.2's I/P/B)."""

    I = "I"
    P = "P"
    B = "B"


@dataclass(frozen=True)
class Frame:
    """One compressed video frame."""

    index: int
    frame_type: str
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ReproError(f"frame size must be positive: {self.size_bytes}")


@dataclass(frozen=True)
class GopConfig:
    """Group-of-pictures shape and frame-size statistics.

    Defaults approximate SD MPEG-2 at ~1.6 Mbit/s: a 9-frame GOP with
    I-frames ~4x P and P ~2.5x B.
    """

    gop_length: int = 9
    p_spacing: int = 3                 # IBBPBBPBB
    i_mean_bytes: int = 24_000
    p_mean_bytes: int = 6_000
    b_mean_bytes: int = 2_400
    size_cv: float = 0.18              # coefficient of variation

    def __post_init__(self) -> None:
        if self.gop_length < 1 or self.p_spacing < 1:
            raise ReproError("GOP shape parameters must be positive")
        if not 0 <= self.size_cv < 1:
            raise ReproError(f"size_cv out of range: {self.size_cv}")


class GopGenerator:
    """Generates an endless IBBP... frame sequence."""

    def __init__(self, config: Optional[GopConfig] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.config = config or GopConfig()
        self.rng = rng or random.Random(0)
        self._index = 0

    def frame_type_at(self, index: int) -> str:
        """Frame type (I/P/B) at a position in the GOP pattern."""
        position = index % self.config.gop_length
        if position == 0:
            return FrameType.I
        if position % self.config.p_spacing == 0:
            return FrameType.P
        return FrameType.B

    def _draw_size(self, mean: int) -> int:
        sigma = mean * self.config.size_cv
        return max(64, round(self.rng.gauss(mean, sigma)))

    def next_frame(self) -> Frame:
        """Generate the next frame in sequence."""
        cfg = self.config
        ftype = self.frame_type_at(self._index)
        mean = {FrameType.I: cfg.i_mean_bytes,
                FrameType.P: cfg.p_mean_bytes,
                FrameType.B: cfg.b_mean_bytes}[ftype]
        frame = Frame(index=self._index, frame_type=ftype,
                      size_bytes=self._draw_size(mean))
        self._index += 1
        return frame

    def frames(self, count: int) -> List[Frame]:
        """The next ``count`` frames."""
        return [self.next_frame() for _ in range(count)]

    def gop(self) -> List[Frame]:
        """One full group of pictures starting at the next I-frame."""
        while self._index % self.config.gop_length != 0:
            self._index += 1
        return self.frames(self.config.gop_length)


@dataclass(frozen=True)
class StreamConfig:
    """The evaluation workload: 1 kB chunks every 5 ms (200 kB/s)."""

    chunk_bytes: int = 1024
    interval_ns: int = 5 * units.MS

    def __post_init__(self) -> None:
        if self.chunk_bytes <= 0 or self.interval_ns <= 0:
            raise ReproError("stream parameters must be positive")

    @property
    def bytes_per_second(self) -> float:
        """The stream's data rate."""
        return self.chunk_bytes * units.SECOND / self.interval_ns


def chunk_schedule(config: StreamConfig, duration_ns: int
                   ) -> Iterator[int]:
    """Nominal send times (ns) of every chunk within ``duration_ns``."""
    if duration_ns < 0:
        raise ReproError(f"negative duration: {duration_ns}")
    t = config.interval_ns
    while t <= duration_ns:
        yield t
        t += config.interval_ns
