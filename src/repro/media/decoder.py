"""MPEG decode cost model.

Two decode paths exist, matching the paper's client comparison:

* **Host software decode** — charged to the host CPU per compressed
  byte and streaming the compressed input plus decoded output through
  the L2 (the paper attributes "much of" the non-offloaded client's 12 %
  extra cache misses to MPEG decoding).
* **GPU-assisted decode** — :meth:`repro.hw.gpu.Gpu.decode_frame`, run
  on the device with hardware assist, leaving the host untouched.

The software model's constants put SD MPEG-2 decode around 35–40 % of a
single ~2 GHz core at full 25 fps rate, consistent with period software
players; the evaluation's 200 kB/s stream is far below full rate, so the
client-side utilization lands in the single digits as in Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.errors import ReproError
from repro.hostos.kernel import Kernel
from repro.sim.engine import Event

__all__ = ["SoftwareDecoderConfig", "SoftwareDecoder", "ChunkDecodeModel",
           "DECODE_EXPANSION"]

# Compressed-to-raw expansion factor shared with the GPU model.
DECODE_EXPANSION = 20


@dataclass(frozen=True)
class SoftwareDecoderConfig:
    """Host decode cost parameters."""

    ns_per_compressed_byte: float = 9.0
    per_frame_overhead_ns: int = 60_000
    decode_buffer_base: int = 0x0C00_0000
    # Working area the decoder walks per frame (reference frames etc.).
    reference_bytes: int = 128 * 1024


class ChunkDecodeModel:
    """Per-chunk decode accounting for the scale-model fidelity tier.

    The detailed Streamer→Decoder path spends tens of simulation events
    per chunk (extraction, channel writes, per-frame decode and display,
    cache walks).  Population-scale runs cannot afford that, so the
    ``fidelity="chunk"`` tier folds the whole pipeline into arithmetic:
    one call per delivered chunk, no events, no site execution.  The
    frame accumulation mirrors :class:`repro.tivopc.components.
    DecoderOffcode` exactly — bytes buffer up and a frame completes per
    ``frame_bytes`` — so chunk counts and frame totals agree with the
    detailed model by construction, and the deviation the fidelity
    validation measures comes only from the timing model.
    """

    __slots__ = ("frame_bytes", "bytes_buffered", "bytes_decoded",
                 "frames_decoded")

    def __init__(self, frame_bytes: int = 8 * 1024) -> None:
        if frame_bytes <= 0:
            raise ReproError(f"frame size must be positive: {frame_bytes}")
        self.frame_bytes = frame_bytes
        self.bytes_buffered = 0
        self.bytes_decoded = 0
        self.frames_decoded = 0

    def on_chunk(self, size_bytes: int) -> int:
        """Account one delivered chunk; returns frames completed by it."""
        self.bytes_buffered += size_bytes
        frames = self.bytes_buffered // self.frame_bytes
        if frames:
            self.bytes_buffered -= frames * self.frame_bytes
            self.frames_decoded += frames
            self.bytes_decoded += frames * self.frame_bytes
        return frames

    @property
    def raw_bytes_out(self) -> int:
        """Raw output bytes, via the shared expansion factor."""
        return self.bytes_decoded * DECODE_EXPANSION


class SoftwareDecoder:
    """Software MPEG decoder running on a host kernel."""

    def __init__(self, kernel: Kernel,
                 config: Optional[SoftwareDecoderConfig] = None) -> None:
        self.kernel = kernel
        self.config = config or SoftwareDecoderConfig()
        self.bytes_decoded = 0
        self.frames_decoded = 0
        self._cursor = 0

    def decode(self, compressed_bytes: int, is_frame_boundary: bool = True
               ) -> Generator[Event, None, int]:
        """Decode ``compressed_bytes``; returns the raw output size."""
        if compressed_bytes <= 0:
            raise ReproError(
                f"decode size must be positive: {compressed_bytes}")
        cfg = self.config
        # Touch compressed input and part of the reference/output area.
        base = cfg.decode_buffer_base + self._cursor
        self._cursor = (self._cursor + compressed_bytes) % (1 << 20)
        self.kernel.l2.touch_range(base, compressed_bytes)
        self.kernel.l2.touch_range(
            cfg.decode_buffer_base + (1 << 21),
            min(cfg.reference_bytes, compressed_bytes * 4), write=True)
        cost = round(compressed_bytes * cfg.ns_per_compressed_byte)
        if is_frame_boundary:
            cost += cfg.per_frame_overhead_ns
            self.frames_decoded += 1
        yield from self.kernel.cpu.execute(cost, context="mpeg-decode")
        self.bytes_decoded += compressed_bytes
        return compressed_bytes * DECODE_EXPANSION
