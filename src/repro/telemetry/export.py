"""Exporters: Chrome trace-event JSON, Prometheus text, JSON snapshot.

Three read-only views over one :class:`~repro.telemetry.spans.Telemetry`
hub:

* :func:`to_chrome_trace` — the Chrome trace-event format (Perfetto and
  ``chrome://tracing`` load it directly).  Each span track (one per
  device site, channel, bus) becomes a named thread; spans are ``"X"``
  complete events, instants are ``"i"`` marks.
* :func:`to_prometheus_text` — the Prometheus text exposition format
  for the metrics registry (``# HELP``/``# TYPE`` + samples, histograms
  as cumulative ``_bucket``/``_sum``/``_count``).
* :func:`to_json_snapshot` — a machine-readable dump of everything
  (spans, events, metrics) for programmatic diffing.

Determinism: ids are counters, timestamps are sim time, and all JSON is
emitted with sorted keys — two runs with the same seed produce
byte-identical artifacts (``tests/test_telemetry_export.py`` pins this).

The validators (:func:`validate_chrome_trace`,
:func:`validate_prometheus_text`) are the CLI's and CI's malformed-output
oracle: cheap structural checks that a consumer (Perfetto, a Prometheus
scraper) would choke without.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Telemetry

__all__ = ["to_chrome_trace", "to_prometheus_text", "to_json_snapshot",
           "write_artifacts", "validate_chrome_trace",
           "validate_prometheus_text"]

_PID = 1


def _tracks(telemetry: Telemetry) -> Dict[str, int]:
    """Stable track -> tid mapping (sorted by name, tids from 1)."""
    names = {span.track for span in telemetry.spans}
    names.update(event.track for event in telemetry.events)
    return {name: tid for tid, name in enumerate(sorted(names), start=1)}


def _args(attrs: Optional[Dict[str, Any]], trace_id: Optional[int],
          span_id: Optional[int] = None,
          parent_id: Optional[int] = None) -> Dict[str, Any]:
    args: Dict[str, Any] = dict(attrs) if attrs else {}
    if trace_id is not None:
        args["trace_id"] = trace_id
    if span_id is not None:
        args["span_id"] = span_id
    if parent_id is not None:
        args["parent_id"] = parent_id
    return args


def to_chrome_trace(telemetry: Telemetry) -> Dict[str, Any]:
    """The hub's spans/instants as a Chrome trace-event object.

    ``ts``/``dur`` are microseconds (float, from integer sim ns), the
    format's native unit.  Span identity and causality ride in ``args``
    (``trace_id``/``span_id``/``parent_id``) so a loaded trace can be
    queried for a single invocation's tree.
    """
    tracks = _tracks(telemetry)
    events: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": _PID,
         "args": {"name": "repro-sim"}},
    ]
    for name, tid in tracks.items():
        events.append({"name": "thread_name", "ph": "M", "pid": _PID,
                       "tid": tid, "args": {"name": name}})
    spans = sorted(telemetry.spans,
                   key=lambda s: (s.start_ns, s.span_id))
    for span in spans:
        events.append({
            "name": span.name, "cat": span.category, "ph": "X",
            "pid": _PID, "tid": tracks[span.track],
            "ts": span.start_ns / 1000.0,
            "dur": span.duration_ns / 1000.0,
            "args": _args(span.attrs, span.trace_id, span.span_id,
                          span.parent_id),
        })
    marks = sorted(telemetry.events,
                   key=lambda e: (e.time_ns, e.event_id))
    for event in marks:
        events.append({
            "name": event.name, "cat": event.category, "ph": "i",
            "pid": _PID, "tid": tracks[event.track],
            "ts": event.time_ns / 1000.0, "s": "t",
            "args": _args(event.attrs, event.trace_id,
                          parent_id=event.parent_id),
        })
    return {"traceEvents": events, "displayTimeUnit": "ns",
            "otherData": {"dropped_spans": telemetry.dropped_spans,
                          "dropped_events": telemetry.dropped_events}}


def _format_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


def _format_labels(names, values) -> str:
    if not names:
        return ""
    pairs = ",".join(
        '%s="%s"' % (name,
                     value.replace("\\", r"\\").replace('"', r'\"'))
        for name, value in zip(names, values))
    return "{" + pairs + "}"


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format.

    Collectors run first, so absorbed legacy counters are current.
    """
    registry.collect()
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for label_values, child in family.samples():
            labels = _format_labels(family.label_names, label_values)
            if family.kind == "histogram":
                for le, count in child.cumulative():
                    le_text = "+Inf" if le == float("inf") else str(le)
                    bucket_labels = _format_labels(
                        family.label_names + ("le",),
                        label_values + (le_text,))
                    lines.append(
                        f"{family.name}_bucket{bucket_labels} {count}")
                lines.append(f"{family.name}_sum{labels} "
                             f"{_format_value(child.sum)}")
                lines.append(f"{family.name}_count{labels} {child.count}")
            else:
                lines.append(f"{family.name}{labels} "
                             f"{_format_value(child.value)}")
    return "\n".join(lines) + "\n"


def to_json_snapshot(telemetry: Telemetry) -> Dict[str, Any]:
    """Everything the hub holds, as plain JSON-ready data."""
    return {
        "metrics": telemetry.registry.snapshot(),
        "spans": [
            {"name": s.name, "category": s.category, "track": s.track,
             "trace_id": s.trace_id, "span_id": s.span_id,
             "parent_id": s.parent_id, "start_ns": s.start_ns,
             "end_ns": s.end_ns, "attrs": s.attrs or {}}
            for s in sorted(telemetry.spans,
                            key=lambda s: (s.start_ns, s.span_id))],
        "events": [
            {"name": e.name, "category": e.category, "track": e.track,
             "time_ns": e.time_ns, "trace_id": e.trace_id,
             "parent_id": e.parent_id, "attrs": e.attrs or {}}
            for e in sorted(telemetry.events,
                            key=lambda e: (e.time_ns, e.event_id))],
        "dropped_spans": telemetry.dropped_spans,
        "dropped_events": telemetry.dropped_events,
    }


def write_artifacts(telemetry: Telemetry, out_dir: str,
                    prefix: str = "telemetry") -> Dict[str, str]:
    """Write all three artifact files; returns format -> path.

    ``<prefix>.trace.json`` (Perfetto), ``<prefix>.metrics.prom``
    (Prometheus text), ``<prefix>.snapshot.json`` (full JSON dump).
    JSON is sorted-key so same-seed runs are byte-identical.
    """
    import os
    os.makedirs(out_dir, exist_ok=True)
    paths = {
        "chrome": os.path.join(out_dir, f"{prefix}.trace.json"),
        "prometheus": os.path.join(out_dir, f"{prefix}.metrics.prom"),
        "snapshot": os.path.join(out_dir, f"{prefix}.snapshot.json"),
    }
    with open(paths["chrome"], "w") as fh:
        json.dump(to_chrome_trace(telemetry), fh, sort_keys=True,
                  indent=1)
        fh.write("\n")
    with open(paths["prometheus"], "w") as fh:
        fh.write(to_prometheus_text(telemetry.registry))
    with open(paths["snapshot"], "w") as fh:
        json.dump(to_json_snapshot(telemetry), fh, sort_keys=True,
                  indent=1)
        fh.write("\n")
    return paths


# -- validation ------------------------------------------------------------------


def validate_chrome_trace(trace: Dict[str, Any],
                          strict_nesting: bool = False) -> List[str]:
    """Structural checks a trace viewer would choke without.

    Always checked: the ``traceEvents`` envelope, required keys per
    phase, non-negative ``ts``/``dur``, per-track ``ts`` monotonicity
    (the emitter sorts by start time), and causality — a child span
    cannot start before its parent.  ``strict_nesting`` additionally
    requires every child interval to lie fully inside its parent's;
    deterministic single-flow scenarios satisfy it, but proxies using
    deadline policies may abandon an attempt whose channel work outlives
    the attempt span, so it is opt-in.
    """
    problems: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    spans: Dict[int, Dict[str, Any]] = {}
    last_ts = -1.0
    for i, event in enumerate(events):
        ph = event.get("ph")
        if ph not in ("X", "M", "i"):
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        if "name" not in event or "pid" not in event:
            problems.append(f"event {i}: missing name/pid")
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i}: bad ts {ts!r}")
            continue
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: bad dur {dur!r}")
                continue
            if ts < last_ts:
                problems.append(
                    f"event {i}: span ts not monotonic ({ts} < {last_ts})")
            last_ts = ts
            args = event.get("args") or {}
            span_id = args.get("span_id")
            if span_id is not None:
                spans[span_id] = event
    for span_id, event in spans.items():
        parent_id = (event.get("args") or {}).get("parent_id")
        if parent_id is None:
            continue
        parent = spans.get(parent_id)
        if parent is None:
            problems.append(
                f"span {span_id}: parent {parent_id} not in trace")
            continue
        if event["ts"] < parent["ts"]:
            problems.append(
                f"span {span_id}: starts before parent {parent_id}")
        if strict_nesting:
            child_end = event["ts"] + event["dur"]
            parent_end = parent["ts"] + parent["dur"]
            if child_end > parent_end:
                problems.append(
                    f"span {span_id}: ends after parent {parent_id} "
                    f"({child_end} > {parent_end})")
    return problems


_PROM_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9].*$")
_PROM_COMMENT_RE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ")


def validate_prometheus_text(text: str) -> List[str]:
    """Line-level checks of the text exposition format."""
    problems: List[str] = []
    if not text.endswith("\n"):
        problems.append("exposition must end with a newline")
    typed = set()
    for i, line in enumerate(text.splitlines()):
        if not line:
            continue
        if line.startswith("#"):
            if not _PROM_COMMENT_RE.match(line):
                problems.append(f"line {i}: malformed comment: {line!r}")
            elif line.startswith("# TYPE "):
                typed.add(line.split()[2])
            continue
        if not _PROM_SAMPLE_RE.match(line):
            problems.append(f"line {i}: malformed sample: {line!r}")
            continue
        name = re.split(r"[{ ]", line, maxsplit=1)[0]
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in typed and base not in typed:
            problems.append(f"line {i}: sample {name!r} has no # TYPE")
    return problems
