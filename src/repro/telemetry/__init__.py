"""repro.telemetry — end-to-end offload tracing, metrics, exporters.

The measurement layer HYDRA's evaluation implies: causal spans
(:mod:`~repro.telemetry.spans`) follow one remote invocation from proxy
through marshal, channel, batch, bus and device execution to the reply;
a labelled metrics registry (:mod:`~repro.telemetry.metrics`) absorbs
the scattered legacy counters via adapters
(:mod:`~repro.telemetry.adapters`); and exporters
(:mod:`~repro.telemetry.export`) turn a run into Perfetto-loadable
Chrome trace JSON, Prometheus text and a JSON snapshot.

Enable by attaching a hub::

    from repro.telemetry import Telemetry
    tel = Telemetry.attach(sim)         # or TestbedConfig(telemetry=True)
    ... run ...
    from repro.telemetry.export import write_artifacts
    write_artifacts(tel, "artifacts/")

or run a packaged scenario: ``python -m repro.telemetry --scenario
tivopc``.
"""

from repro.telemetry.merge import merge_snapshots
from repro.telemetry.metrics import (Counter, Gauge, Histogram,
                                     MetricFamily, MetricsRegistry)
from repro.telemetry.spans import (Span, SpanContext, Telemetry,
                                   TelemetryEvent)

__all__ = ["Counter", "Gauge", "Histogram", "MetricFamily",
           "MetricsRegistry", "Span", "SpanContext", "Telemetry",
           "TelemetryEvent", "merge_snapshots"]
