"""Causal spans — the end-to-end offload trace of one remote invocation.

HYDRA's argument rests on *attributing* cost along the offload path:
proxy marshaling, channel buffering, bus transactions, device execution
(Sections 4-6).  A :class:`Span` is one timed segment of that path; a
:class:`SpanContext` is the (trace id, span id) pair that links segments
into a tree.  The root span is opened by the proxy, its context rides on
the :class:`~repro.core.call.Call` object (``call.trace_ctx``), and each
downstream layer — channel, batcher, bus, device dispatch, reply —
parents its own span under whatever context reaches it.

Everything is driven by *simulated* time and counter-allocated ids, so
the trace of a seeded run is deterministic byte for byte: two runs with
the same seed export identical artifacts (see
``tests/test_telemetry_export.py``).

Cost model
----------

Instrumented sites pay a single attribute check when telemetry is
disabled (``tel = sim.telemetry`` + ``if tel is not None``), preserving
the hot-path budget of the simulator overhaul.  When enabled, ``begin``/
``end`` allocate one ``__slots__`` Span and append to a bounded list —
no sim events are created, so event counts (and therefore determinism
assertions on ``events_processed``) are identical with telemetry on or
off.

Parenting across generator layers
---------------------------------

A bus transfer cannot receive its parent span as an argument without
threading telemetry through every provider signature.  Instead the
channel layer *pushes* its span context into a per-process slot
(:meth:`Telemetry.push_ctx`) around the provider call and the bus reads
:meth:`Telemetry.current_ctx` on entry.  The slot is keyed by the
simulator's active process: the whole channel -> provider -> bus chain
runs inside the writer's process via ``yield from``, so concurrent
writers on other processes cannot clobber each other's context.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.telemetry.metrics import MetricsRegistry

__all__ = ["Span", "SpanContext", "Telemetry", "TelemetryEvent"]

# Span-duration histogram buckets (ns): 1us .. 1s, decade spaced.
_SPAN_NS_BUCKETS = (1_000, 10_000, 100_000, 1_000_000, 10_000_000,
                    100_000_000, 1_000_000_000)


class SpanContext:
    """The propagatable identity of a span: which trace, which node."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: int) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SpanContext(trace={self.trace_id}, span={self.span_id})"


class Span:
    """One timed segment of an offload path.

    A ``__slots__`` class: traced runs mint one per instrumented
    operation, so allocation cost matters.  ``end_ns`` is ``None`` while
    the span is open; only ended spans are exported.
    """

    __slots__ = ("name", "category", "track", "trace_id", "span_id",
                 "parent_id", "start_ns", "end_ns", "attrs")

    def __init__(self, name: str, category: str, track: str, trace_id: int,
                 span_id: int, parent_id: Optional[int], start_ns: int,
                 attrs: Optional[Dict[str, Any]]) -> None:
        self.name = name
        self.category = category
        self.track = track
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.attrs = attrs

    @property
    def context(self) -> SpanContext:
        """This span's propagatable identity (attach to Calls, push as
        the process context for providers/buses)."""
        return SpanContext(self.trace_id, self.span_id)

    @property
    def duration_ns(self) -> int:
        """Simulated duration; 0 while the span is still open."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Span {self.name!r} cat={self.category} "
                f"trace={self.trace_id} id={self.span_id} "
                f"parent={self.parent_id} [{self.start_ns}, {self.end_ns}]>")


class TelemetryEvent:
    """A zero-duration mark (fault applied, retransmit, watchdog miss)."""

    __slots__ = ("name", "category", "track", "event_id", "time_ns",
                 "trace_id", "parent_id", "attrs")

    def __init__(self, name: str, category: str, track: str, event_id: int,
                 time_ns: int, trace_id: Optional[int],
                 parent_id: Optional[int],
                 attrs: Optional[Dict[str, Any]]) -> None:
        self.name = name
        self.category = category
        self.track = track
        self.event_id = event_id
        self.time_ns = time_ns
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.attrs = attrs

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TelemetryEvent {self.name!r} cat={self.category} "
                f"t={self.time_ns}>")


ParentLike = Union[Span, SpanContext, None]


class Telemetry:
    """The per-simulator telemetry hub: spans, instants and metrics.

    Attach with :meth:`attach` (or set ``sim.telemetry`` yourself); the
    instrumented subsystems discover it through that attribute.  Holds a
    :class:`~repro.telemetry.metrics.MetricsRegistry` so one object
    carries the whole observable state of a run.
    """

    def __init__(self, sim, registry: Optional[MetricsRegistry] = None,
                 max_spans: int = 200_000,
                 max_events: int = 200_000) -> None:
        self.sim = sim
        self.registry = registry or MetricsRegistry()
        self.max_spans = max_spans
        self.max_events = max_events
        self.spans: List[Span] = []
        self.events: List[TelemetryEvent] = []
        self.dropped_spans = 0
        self.dropped_events = 0
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._event_ids = itertools.count(1)
        # Per-process dynamic span context (see module docstring).
        self._proc_ctx: Dict[Any, SpanContext] = {}
        self._span_hist = self.registry.histogram(
            "repro_span_duration_ns",
            help="Simulated duration of telemetry spans by category",
            labels=("category",), buckets=_SPAN_NS_BUCKETS)

    # -- lifecycle --------------------------------------------------------------

    @classmethod
    def attach(cls, sim, **kwargs: Any) -> "Telemetry":
        """Create a hub and install it as ``sim.telemetry``."""
        telemetry = cls(sim, **kwargs)
        sim.telemetry = telemetry
        return telemetry

    def detach(self) -> None:
        """Remove this hub from its simulator (sites go back to the
        one-attribute-check disabled path)."""
        if getattr(self.sim, "telemetry", None) is self:
            self.sim.telemetry = None

    # -- span API ----------------------------------------------------------------

    def new_trace(self) -> int:
        """Allocate a fresh trace id (one per root operation)."""
        return next(self._trace_ids)

    @staticmethod
    def _parent_ids(parent: ParentLike,
                    trace_id: Optional[int]) -> Tuple[Optional[int],
                                                      Optional[int]]:
        if parent is None:
            return trace_id, None
        return parent.trace_id, parent.span_id

    def begin(self, name: str, category: str, track: str,
              parent: ParentLike = None, trace_id: Optional[int] = None,
              **attrs: Any) -> Span:
        """Open a span at the current simulated time.

        Without ``parent`` (and ``trace_id``) the span roots a new
        trace.  ``parent`` accepts a :class:`Span`, a
        :class:`SpanContext` (e.g. a Call's ``trace_ctx``), or ``None``.
        """
        tid, parent_id = self._parent_ids(parent, trace_id)
        if tid is None:
            tid = self.new_trace()
        return Span(name=name, category=category, track=track, trace_id=tid,
                    span_id=next(self._span_ids), parent_id=parent_id,
                    start_ns=self.sim.now, attrs=attrs or None)

    def end(self, span: Span, **attrs: Any) -> Span:
        """Close a span at the current simulated time and record it."""
        span.end_ns = self.sim.now
        if attrs:
            if span.attrs is None:
                span.attrs = attrs
            else:
                span.attrs.update(attrs)
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped_spans += 1
        self._span_hist.labels(category=span.category).observe(
            span.duration_ns)
        return span

    def instant(self, name: str, category: str, track: str,
                parent: ParentLike = None,
                **attrs: Any) -> Optional[TelemetryEvent]:
        """Record a zero-duration mark at the current simulated time."""
        trace_id, parent_id = self._parent_ids(parent, None)
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return None
        event = TelemetryEvent(
            name=name, category=category, track=track,
            event_id=next(self._event_ids), time_ns=self.sim.now,
            trace_id=trace_id, parent_id=parent_id, attrs=attrs or None)
        self.events.append(event)
        return event

    def log(self, category: str, message: str, **fields: Any) -> None:
        """Bridge for :func:`repro.sim.trace.emit` call sites.

        Forwards to an attached :class:`~repro.sim.trace.Tracer` (the
        legacy consumer keeps working unchanged) and keeps the record as
        an instant on a per-category log track so Perfetto shows the
        textual emits alongside the span tree.
        """
        tracer = getattr(self.sim, "tracer", None)
        if tracer is not None:
            tracer.emit(category, message, **fields)
        self.instant(message, category, "log/" + category, **fields)

    # -- per-process dynamic context ----------------------------------------------

    def push_ctx(self, ctx: SpanContext) -> tuple:
        """Install ``ctx`` as the active process's span context.

        Returns a token for :meth:`pop_ctx`.  Push and pop must happen
        in the same simulation process (the normal ``yield from`` chain
        guarantees this).
        """
        key = self.sim._active_process
        token = (key, self._proc_ctx.get(key))
        self._proc_ctx[key] = ctx
        return token

    def pop_ctx(self, token: tuple) -> None:
        """Restore the context that :meth:`push_ctx` displaced."""
        key, prev = token
        if prev is None:
            self._proc_ctx.pop(key, None)
        else:
            self._proc_ctx[key] = prev

    def current_ctx(self) -> Optional[SpanContext]:
        """The active process's span context (None outside any span)."""
        return self._proc_ctx.get(self.sim._active_process)

    # -- inspection -----------------------------------------------------------------

    def spans_of(self, category: str) -> List[Span]:
        """All recorded spans of one category."""
        return [s for s in self.spans if s.category == category]

    def trace(self, trace_id: int) -> List[Span]:
        """All recorded spans of one trace, in start order."""
        return sorted((s for s in self.spans if s.trace_id == trace_id),
                      key=lambda s: (s.start_ns, s.span_id))

    def trace_categories(self) -> Dict[int, set]:
        """trace id -> set of span categories recorded under it."""
        out: Dict[int, set] = {}
        for span in self.spans:
            out.setdefault(span.trace_id, set()).add(span.category)
        return out
