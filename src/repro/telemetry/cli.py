"""``python -m repro.telemetry`` — run a scenario, write trace artifacts.

Runs a packaged scenario with telemetry attached and writes the three
artifact files (Perfetto-loadable Chrome trace, Prometheus text, JSON
snapshot), then validates them — a malformed artifact or an incomplete
span tree exits non-zero, which is what the CI smoke job keys on.

Scenarios:

* ``tivopc`` (default) — the offloaded TiVoPC pipeline streaming for
  ``--seconds`` of simulated time, plus GUI control calls (pause /
  query / play) over a two-way proxy so the trace provably contains a
  complete proxy -> marshal -> channel -> bus -> device -> reply tree
  under one trace id.
* ``chaos`` — one seeded chaos-soak scenario (faults, retransmits,
  recovery) with telemetry attached; exercises the retransmit and
  recovery branches of the span model.

Timestamps are sim time and ids are counters, so artifacts are
byte-identical for the same seed.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

# The full invocation tree the tivopc scenario must demonstrate
# (ISSUE acceptance criterion).
_REQUIRED_CATEGORIES = frozenset(
    {"proxy", "marshal", "channel", "bus", "device", "reply"})


def run_tivopc(seed: int, seconds: float):
    """The offloaded TiVoPC pipeline with GUI control calls."""
    from repro.tivopc.client import OffloadedClient
    from repro.tivopc.gui import GuiController
    from repro.tivopc.server import OffloadedServer
    from repro.tivopc.testbed import Testbed, TestbedConfig

    testbed = Testbed(TestbedConfig(seed=seed, telemetry=True))
    testbed.start()
    client = OffloadedClient(testbed)
    client.start()
    testbed.run(0.3)                    # client deploys
    server = OffloadedServer(testbed)
    server.start()
    testbed.run(seconds / 2)

    gui = GuiController(client)

    def control_script():
        yield from gui.pause()
        yield from gui.is_paused()
        yield from gui.play()

    testbed.sim.spawn(control_script(), name="gui-control-script")
    testbed.run(seconds / 2)
    server.stop()
    testbed.run(0.2)                    # drain in-flight frames
    return testbed.telemetry


def run_chaos(seed: int, seconds: float):
    """One chaos-soak scenario (faults + recovery) with telemetry."""
    from repro.faults.chaos import ChaosProfile, run_chaos_scenario

    run = run_chaos_scenario(
        seed, ChaosProfile(seconds=max(3.0, seconds), telemetry=True))
    return run.testbed.telemetry


_SCENARIOS = {"tivopc": run_tivopc, "chaos": run_chaos}


def _check_completeness(telemetry) -> List[str]:
    """At least one trace must cover the whole offload path."""
    for categories in telemetry.trace_categories().values():
        if _REQUIRED_CATEGORIES <= categories:
            return []
    seen = set()
    for categories in telemetry.trace_categories().values():
        seen |= categories
    return ["no single trace covers the full offload path "
            f"{sorted(_REQUIRED_CATEGORIES)}; categories seen across "
            f"all traces: {sorted(seen)}"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Run a scenario with telemetry and write "
                    "trace/metrics artifacts.")
    parser.add_argument("--scenario", choices=sorted(_SCENARIOS),
                        default="tivopc")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--seconds", type=float, default=2.0,
                        help="simulated streaming horizon (default 2.0)")
    parser.add_argument("--out", default="artifacts/telemetry",
                        help="output directory for the artifact files")
    args = parser.parse_args(argv)

    from repro.telemetry.export import (to_chrome_trace,
                                        validate_chrome_trace,
                                        validate_prometheus_text,
                                        write_artifacts)

    telemetry = _SCENARIOS[args.scenario](args.seed, args.seconds)
    paths = write_artifacts(telemetry, args.out,
                            prefix=f"{args.scenario}-seed{args.seed}")

    problems = validate_chrome_trace(to_chrome_trace(telemetry))
    with open(paths["prometheus"]) as fh:
        problems += validate_prometheus_text(fh.read())
    if args.scenario == "tivopc":
        problems += _check_completeness(telemetry)

    with open(paths["chrome"]) as fh:
        n_events = len(json.load(fh)["traceEvents"])
    print(f"scenario={args.scenario} seed={args.seed} "
          f"sim_ns={telemetry.sim.now}")
    print(f"spans={len(telemetry.spans)} instants={len(telemetry.events)} "
          f"traces={len(telemetry.trace_categories())} "
          f"trace_events={n_events}")
    for kind, path in sorted(paths.items()):
        print(f"  {kind}: {path}")
    if problems:
        for problem in problems:
            print(f"MALFORMED: {problem}", file=sys.stderr)
        return 1
    print("artifacts validated: trace parses, spans are causal, "
          "exposition is well-formed")
    return 0
