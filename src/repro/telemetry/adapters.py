"""Adapters absorbing the repo's scattered counters into the registry.

Instrumentation grew up in four ad-hoc places — :class:`ChannelStats`
snapshots, ``marshal.stats``, :class:`RecoveryIncident` lists, bus
crossing dicts — each with its own access idiom.  The adapters here
leave those counters authoritative (no behaviour change, no hot-path
cost) and register scrape-time *collectors* that mirror them into a
:class:`~repro.telemetry.metrics.MetricsRegistry`, so one
``registry.snapshot()`` carries the whole quantitative state of a run.

The channel conservation law (``sent == delivered + dropped``) becomes a
first-class metric here: every channel exports its imbalance as a gauge
and rel-armed channels are checked against the chaos soak's slack rule
(:func:`check_channel_conservation`), with the violation count exported
per runtime.

Collectors read live objects lazily at collect time, so channels or
watchdogs created *after* binding are picked up automatically.
"""

from __future__ import annotations

from typing import List

from repro.core import marshal
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["bind_marshal", "bind_bus", "bind_sim", "bind_runtime",
           "bind_injector", "bind_rdma", "bind_testbed",
           "check_channel_conservation", "check_rdma_conservation"]

_CHANNEL_COUNTERS = (
    ("repro_channel_sent_total", "sent", "Messages sent (wire attempts)"),
    ("repro_channel_delivered_total", "delivered",
     "Messages delivered to receivers"),
    ("repro_channel_dropped_total", "dropped",
     "Messages lost, mangled or duplicate-suppressed in flight"),
    ("repro_channel_corrupted_total", "corrupted",
     "Messages corrupted in flight"),
    ("repro_channel_bytes_total", "bytes", "Payload bytes sent"),
    ("repro_channel_batches_total", "batches", "Vectored batches sent"),
    ("repro_channel_retransmits_total", "retransmits",
     "Reliable-protocol retransmissions"),
    ("repro_channel_dup_dropped_total", "dup_dropped",
     "Duplicate frames suppressed by the receiver"),
)


def bind_marshal(registry: MetricsRegistry) -> None:
    """Export ``marshal.stats`` encode/decode counts.

    ``marshal.stats`` is process-global, so a baseline is captured at
    bind time and the registry exports the *delta* — keeping snapshots
    of a seeded run identical however many runs preceded it in the same
    interpreter.
    """
    base_encodes = marshal.stats.encodes
    base_decodes = marshal.stats.decodes
    encodes = registry.counter(
        "repro_marshal_encodes_total",
        help="Full argument serializations since telemetry bind")
    decodes = registry.counter(
        "repro_marshal_decodes_total",
        help="Argument deserializations since telemetry bind")

    def collect(_registry: MetricsRegistry) -> None:
        encodes.set_total(marshal.stats.encodes - base_encodes)
        decodes.set_total(marshal.stats.decodes - base_decodes)

    registry.register_collector(collect)


def bind_bus(registry: MetricsRegistry, bus, name: str) -> None:
    """Export one bus's movement counters under the ``bus`` label."""
    bytes_moved = registry.counter(
        "repro_bus_bytes_moved_total", help="Bytes moved over the bus",
        labels=("bus",)).labels(bus=name)
    transfers = registry.counter(
        "repro_bus_transfers_total", help="Completed bus transactions",
        labels=("bus",)).labels(bus=name)
    sg_transfers = registry.counter(
        "repro_bus_sg_transfers_total",
        help="Scatter-gather transactions", labels=("bus",)).labels(bus=name)
    transients = registry.counter(
        "repro_bus_transient_faults_total",
        help="Injected transient faults replayed on the bus",
        labels=("bus",)).labels(bus=name)

    def collect(_registry: MetricsRegistry) -> None:
        bytes_moved.set_total(bus.bytes_moved)
        transfers.set_total(sum(bus.crossings.values()))
        sg_transfers.set_total(bus.sg_transfers)
        transients.set_total(bus.transient_faults)

    registry.register_collector(collect)


def bind_sim(registry: MetricsRegistry, sim) -> None:
    """Export the scheduler core's observability counters.

    ``repro_sim_dead_timers`` is the wheel's cancelled-but-unreclaimed
    entry gauge: cancellations that could not be removed in place (the
    entry had already been promoted to the sorted window or parked in
    the overflow heap) sit in the queue until popped or swept by
    ``Simulator.reclaim()``.  A gauge stuck high means cancelled timers
    are accumulating faster than the reclaim threshold sweeps them.
    """
    events = registry.counter(
        "repro_sim_events_total", help="Events dispatched by the scheduler")
    fused = registry.counter(
        "repro_sim_fused_resumes_total",
        help="Events dispatched via the fused-sleep fast path")
    dead = registry.gauge(
        "repro_sim_dead_timers",
        help="Cancelled timer entries awaiting lazy removal from the wheel")

    def collect(_registry: MetricsRegistry) -> None:
        events.set_total(sim.events_processed)
        fused.set_total(sim.fused_resumes)
        dead.set(sim.dead_timers)

    registry.register_collector(collect)


def check_channel_conservation(executive) -> List[str]:
    """The conservation law as a checkable predicate.

    Mirrors the chaos soak's oracle: on every noise-armed reliable
    channel ``sent - (delivered + dropped)`` must be 0, with one frame
    of slack on a channel torn down mid-flight.  Returns human-readable
    violations (empty = law holds).
    """
    violations: List[str] = []
    for channel in executive.channels:
        if channel._rel is None:
            continue
        stats = channel.stats()
        imbalance = stats.sent - (stats.delivered + stats.dropped)
        slack = 1 if channel.closed else 0
        if not 0 <= imbalance <= slack:
            violations.append(
                f"channel #{stats.channel_id} ({stats.label!r}) leaks "
                f"accounting: sent={stats.sent} "
                f"delivered={stats.delivered} dropped={stats.dropped}")
        if stats.corrupted + stats.dup_dropped > stats.dropped:
            violations.append(
                f"channel #{stats.channel_id} ({stats.label!r}) drop "
                "breakdown exceeds total drops")
    return violations


_RDMA_COUNTERS = (
    ("repro_rdma_reads_total", "reads", "One-sided read verbs completed"),
    ("repro_rdma_writes_total", "writes",
     "One-sided write verbs completed"),
    ("repro_rdma_cas_total", "cas",
     "One-sided compare-and-swap verbs completed"),
    ("repro_rdma_doorbells_total", "doorbells",
     "Doorbell rings (one per submitted batch)"),
    ("repro_rdma_posted_total", "posted", "Work requests posted"),
    ("repro_rdma_completed_total", "completed",
     "Work requests completed successfully"),
    ("repro_rdma_failed_total", "failed",
     "Work requests completed with error status"),
    ("repro_rdma_bytes_read_total", "bytes_read",
     "Bytes moved by one-sided reads"),
    ("repro_rdma_bytes_written_total", "bytes_written",
     "Bytes moved by one-sided writes"),
)


def check_rdma_conservation(provider) -> List[str]:
    """The one-sided conservation law as a checkable predicate.

    Verbs never traverse the two-sided dispatch path, so
    ``sent == delivered + dropped`` cannot describe them; the one-sided
    law is ``posted == completed + failed`` — every posted work request
    terminates as exactly one completion, successful or errored, even
    when the engine crashes mid-doorbell.  Returns human-readable
    violations (empty = law holds).
    """
    stats = provider.stats
    violations: List[str] = []
    if stats.imbalance != 0:
        violations.append(
            f"provider {provider.name} leaks work requests: "
            f"posted={stats.posted} completed={stats.completed} "
            f"failed={stats.failed} (imbalance {stats.imbalance})")
    if stats.reads + stats.writes + stats.cas != stats.completed:
        violations.append(
            f"provider {provider.name} verb breakdown "
            f"(reads={stats.reads} writes={stats.writes} cas={stats.cas}) "
            f"does not sum to completed={stats.completed}")
    return violations


def bind_rdma(registry: MetricsRegistry, provider, name: str) -> None:
    """Export one RDMA provider's one-sided verb counters.

    Mirrors :attr:`~repro.rdma.verbs.RdmaStats` into the registry under
    the ``provider`` label and exports the one-sided conservation law
    (``posted == completed + failed``) as an imbalance gauge plus a
    violation count, the same shape as the channel law.
    """
    labels = {"provider": name}
    families = [(registry.counter(metric, help=help_text,
                                  labels=("provider",)).labels(**labels),
                 attr)
                for metric, attr, help_text in _RDMA_COUNTERS]
    imbalance_gauge = registry.gauge(
        "repro_rdma_conservation_imbalance",
        help="posted - (completed + failed); nonzero = work requests "
             "lost in flight",
        labels=("provider",)).labels(**labels)
    violation_gauge = registry.gauge(
        "repro_rdma_conservation_violations",
        help="RDMA providers violating the one-sided conservation law",
        labels=("provider",)).labels(**labels)

    def collect(_registry: MetricsRegistry) -> None:
        stats = provider.stats
        for family, attr in families:
            family.set_total(getattr(stats, attr))
        imbalance_gauge.set(stats.imbalance)
        violation_gauge.set(len(check_rdma_conservation(provider)))

    registry.register_collector(collect)


def bind_runtime(registry: MetricsRegistry, runtime, name: str) -> None:
    """Export one HYDRA runtime: channels, conservation, recovery,
    watchdog.

    Channels are enumerated at collect time, so channels created after
    binding (recovery replacements included) appear automatically.
    """
    channel_labels = ("runtime", "channel", "label")
    families = [(registry.counter(metric, help=help_text,
                                  labels=channel_labels), attr)
                for metric, attr, help_text in _CHANNEL_COUNTERS]
    imbalance_gauge = registry.gauge(
        "repro_channel_conservation_imbalance",
        help="sent - (delivered + dropped); in-flight frames on "
             "unreliable or multicast channels keep this non-zero",
        labels=channel_labels)
    violation_gauge = registry.gauge(
        "repro_channel_conservation_violations",
        help="Rel-armed channels violating the conservation law",
        labels=("runtime",)).labels(runtime=name)
    incident_gauge = registry.gauge(
        "repro_recovery_incidents",
        help="Device-failure incidents by outcome",
        labels=("runtime", "state"))
    replayed = registry.counter(
        "repro_recovery_replayed_total",
        help="Unacked messages replayed on replacement channels",
        labels=("runtime",)).labels(runtime=name)
    beats = registry.counter(
        "repro_watchdog_beats_total",
        help="Completed heartbeat rounds", labels=("runtime", "device"))
    missed = registry.gauge(
        "repro_watchdog_missed_beats",
        help="Consecutive missed heartbeats (0 = healthy)",
        labels=("runtime", "device"))
    migrations = registry.gauge(
        "repro_migrations",
        help="Live offcode migrations by outcome",
        labels=("runtime", "state"))
    migration_replayed = registry.counter(
        "repro_migration_replayed_total",
        help="Unacked messages replayed during migration cutovers",
        labels=("runtime",)).labels(runtime=name)
    migration_shed = registry.counter(
        "repro_migration_shed_total",
        help="Calls shed at migration holding gates (queue overflow)",
        labels=("runtime",)).labels(runtime=name)
    quarantined = registry.gauge(
        "repro_quarantined_devices",
        help="Devices currently quarantined by the supervisor",
        labels=("runtime",)).labels(runtime=name)
    supervisor_actions = registry.counter(
        "repro_supervisor_decisions_total",
        help="Supervisor policy decisions by action",
        labels=("runtime", "action"))
    admission_shed = registry.counter(
        "repro_admission_shed_total",
        help="Calls shed by admission control, by channel priority",
        labels=("runtime", "priority"))
    admission_engaged = registry.gauge(
        "repro_admission_engaged",
        help="1 while priority-aware load shedding is engaged",
        labels=("runtime",)).labels(runtime=name)

    def collect(_registry: MetricsRegistry) -> None:
        for channel in runtime.executive.channels:
            stats = channel.stats()
            labels = {"runtime": name,
                      "channel": str(stats.channel_id),
                      "label": stats.label}
            for family, attr in families:
                family.labels(**labels).set_total(getattr(stats, attr))
            imbalance_gauge.labels(**labels).set(
                stats.sent - (stats.delivered + stats.dropped))
        violation_gauge.set(
            len(check_channel_conservation(runtime.executive)))
        counts = {"recovered": 0, "failed": 0, "pending": 0}
        total_replayed = 0
        for incident in runtime.incidents:
            if incident.recovered:
                counts["recovered"] += 1
            elif incident.failed:
                counts["failed"] += 1
            else:
                counts["pending"] += 1
            total_replayed += incident.replayed
        for state, count in counts.items():
            incident_gauge.labels(runtime=name, state=state).set(count)
        replayed.set_total(total_replayed)
        watchdog = runtime.watchdog
        if watchdog is not None:
            for device, watch in watchdog._watches.items():
                beats.labels(runtime=name, device=device).set_total(
                    watch.beats)
                missed.labels(runtime=name, device=device).set(watch.missed)
        migration_counts = {"completed": 0, "failed": 0, "pending": 0}
        replayed_in_migration = shed_at_gates = 0
        for record in runtime.migrations:
            if record.completed:
                migration_counts["completed"] += 1
            elif record.failed:
                migration_counts["failed"] += 1
            else:
                migration_counts["pending"] += 1
            replayed_in_migration += record.replayed
            shed_at_gates += record.shed
        for state, count in migration_counts.items():
            migrations.labels(runtime=name, state=state).set(count)
        migration_replayed.set_total(replayed_in_migration)
        migration_shed.set_total(shed_at_gates)
        quarantined.set(len(runtime.quarantined_devices))
        supervisor = runtime.supervisor
        if supervisor is not None:
            actions: dict = {}
            for decision in supervisor.decisions:
                actions[decision.action] = actions.get(
                    decision.action, 0) + 1
            for action, count in actions.items():
                supervisor_actions.labels(
                    runtime=name, action=action).set_total(count)
            for priority, count in supervisor.admission.shed_by_priority.items():
                admission_shed.labels(
                    runtime=name, priority=str(priority)).set_total(count)
            admission_engaged.set(1 if supervisor.admission.engaged else 0)

    registry.register_collector(collect)
    # One-sided substrates ride along: every RDMA provider the runtime
    # registered gets its verb counters and conservation gauge too.
    for provider in getattr(runtime, "rdma_providers", {}).values():
        bind_rdma(registry, provider, f"{name}/{provider.name}")


def bind_injector(registry: MetricsRegistry, injector) -> None:
    """Export the fault injector's applied/skipped schedule progress."""
    counts = registry.counter(
        "repro_faults_total", help="Scheduled fault events by outcome",
        labels=("outcome",))
    applied = counts.labels(outcome="applied")
    skipped = counts.labels(outcome="skipped")

    def collect(_registry: MetricsRegistry) -> None:
        applied.set_total(len(injector.applied))
        skipped.set_total(len(injector.skipped))

    registry.register_collector(collect)


def bind_testbed(registry: MetricsRegistry, testbed) -> None:
    """Bind every observable subsystem of a TiVoPC testbed."""
    bind_marshal(registry)
    bind_sim(registry, testbed.sim)
    for host in (testbed.nas, testbed.server, testbed.client):
        bind_bus(registry, host.machine.bus, host.name)
    bind_runtime(registry, testbed.server_runtime, "server")
    bind_runtime(registry, testbed.client_runtime, "client")
    if testbed.fault_injector is not None:
        bind_injector(registry, testbed.fault_injector)
