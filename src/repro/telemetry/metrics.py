"""A small labelled-metrics registry (Counter / Gauge / Histogram).

The repo's counters grew up scattered: :class:`ChannelStats` snapshots,
``marshal.stats.encodes``, bus crossing dicts, recovery incident lists.
This registry gives them one home with Prometheus-compatible semantics
so a run's whole quantitative state exports from a single object.

Two usage styles:

* **direct** — code owns a metric and mutates it inline::

      calls = registry.counter("repro_calls_total", labels=("method",))
      calls.labels(method="Nop").inc()

* **absorbed** — an adapter (:mod:`repro.telemetry.adapters`) registers
  a *collector* that, at scrape time, copies an existing ad-hoc counter
  into the registry (``Counter.set_total``).  The legacy counter stays
  authoritative; the registry is the uniform read side.

No wall-clock anywhere: values come from simulation state, so snapshots
of a seeded run are deterministic.
"""

from __future__ import annotations

import bisect
import re
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError

__all__ = ["Counter", "Gauge", "Histogram", "MetricFamily",
           "MetricsRegistry", "DEFAULT_BUCKETS"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

# Generic duration-ish buckets; span histograms pass their own.
DEFAULT_BUCKETS = (1_000, 10_000, 100_000, 1_000_000, 10_000_000,
                   100_000_000, 1_000_000_000)


class Counter:
    """A monotonically non-decreasing count."""

    __slots__ = ("_value",)
    kind = "counter"

    def __init__(self) -> None:
        self._value = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ReproError(f"counter increment must be >= 0: {amount}")
        self._value += amount

    def set_total(self, value: float) -> None:
        """Absorb an externally-maintained cumulative total.

        For adapter collectors mirroring legacy counters; the new total
        must not regress (counters only go up).
        """
        if value < self._value:
            raise ReproError(
                f"counter total regressed: {self._value} -> {value}")
        self._value = value

    @property
    def value(self) -> float:
        """Current cumulative total."""
        return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_value",)
    kind = "gauge"

    def __init__(self) -> None:
        self._value = 0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self._value = value

    def inc(self, amount: float = 1) -> None:
        """Add ``amount``."""
        self._value += amount

    def dec(self, amount: float = 1) -> None:
        """Subtract ``amount``."""
        self._value -= amount

    @property
    def value(self) -> float:
        """Current value."""
        return self._value


class Histogram:
    """A bucketed distribution with sum and count."""

    __slots__ = ("buckets", "_counts", "_sum", "_count")
    kind = "histogram"

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        self._counts = [0] * (len(buckets) + 1)   # last = +Inf overflow
        self._sum = 0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._counts[bisect.bisect_left(self.buckets, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        """Total observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of observations."""
        return self._sum

    def cumulative(self) -> List[Tuple[float, int]]:
        """Prometheus-style ``(le, cumulative count)`` pairs ending at
        ``+Inf``."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self._counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), self._count))
        return out


class MetricFamily:
    """One named metric and its labelled children."""

    def __init__(self, name: str, kind: str, help: str,
                 label_names: Tuple[str, ...],
                 buckets: Optional[Tuple[float, ...]] = None) -> None:
        if not _NAME_RE.match(name):
            raise ReproError(f"invalid metric name: {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ReproError(f"invalid label name: {label!r}")
        if len(set(label_names)) != len(label_names):
            raise ReproError(f"duplicate label names: {label_names}")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self.buckets = buckets
        self._children: Dict[Tuple[str, ...], Any] = {}

    def _make_child(self) -> Any:
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.buckets or DEFAULT_BUCKETS)

    def labels(self, **labels: Any) -> Any:
        """The child for one label combination (created on first use)."""
        if set(labels) != set(self.label_names):
            raise ReproError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}")
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _default_child(self) -> Any:
        if self.label_names:
            raise ReproError(
                f"{self.name} is labelled {self.label_names}; "
                "call .labels(...) first")
        return self.labels()

    # Label-less families act directly as their single child.

    def inc(self, amount: float = 1) -> None:
        """Counter/gauge convenience on a label-less family."""
        self._default_child().inc(amount)

    def dec(self, amount: float = 1) -> None:
        """Gauge convenience on a label-less family."""
        self._default_child().dec(amount)

    def set(self, value: float) -> None:
        """Gauge convenience on a label-less family."""
        self._default_child().set(value)

    def set_total(self, value: float) -> None:
        """Counter-absorption convenience on a label-less family."""
        self._default_child().set_total(value)

    def observe(self, value: float) -> None:
        """Histogram convenience on a label-less family."""
        self._default_child().observe(value)

    @property
    def value(self) -> float:
        """Current value of a label-less counter/gauge family."""
        return self._default_child().value

    def samples(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """``(label values, child)`` pairs in sorted label order."""
        return sorted(self._children.items())


class MetricsRegistry:
    """Named metric families plus scrape-time collectors."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    def _get_or_create(self, name: str, kind: str, help: str,
                       labels: Iterable[str],
                       buckets: Optional[Tuple[float, ...]] = None
                       ) -> MetricFamily:
        label_names = tuple(labels)
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.label_names != label_names:
                raise ReproError(
                    f"metric {name!r} already registered as "
                    f"{family.kind}{family.label_names}, requested "
                    f"{kind}{label_names}")
            return family
        family = MetricFamily(name, kind, help, label_names, buckets)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "",
                labels: Iterable[str] = ()) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._get_or_create(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Iterable[str] = ()) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._get_or_create(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Iterable[str] = (),
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS
                  ) -> MetricFamily:
        """Register (or fetch) a histogram family."""
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ReproError(
                f"histogram buckets must be sorted and unique: {buckets}")
        return self._get_or_create(name, "histogram", help, labels,
                                   tuple(buckets))

    def get(self, name: str) -> MetricFamily:
        """Existing family by name (ReproError if absent)."""
        try:
            return self._families[name]
        except KeyError:
            raise ReproError(f"no metric registered as {name!r}") from None

    def register_collector(
            self, collector: Callable[["MetricsRegistry"], None]) -> None:
        """Add a scrape-time refresher (adapters absorbing legacy
        counters register one per bound subsystem)."""
        self._collectors.append(collector)

    def collect(self) -> None:
        """Run every collector so absorbed metrics reflect live state."""
        for collector in self._collectors:
            collector(self)

    def families(self) -> List[MetricFamily]:
        """All families, sorted by name (export order)."""
        return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> Dict[str, Any]:
        """Machine-readable dump of every family (collectors run first).

        Canonical form: families sorted by name, each sample's label set
        serialized in sorted ``label name`` order, and samples ordered
        by those sorted ``(name, value)`` items — never by family
        declaration order.  Two registries holding the same values
        therefore snapshot identically even when their families were
        declared with differently-ordered label tuples or their children
        were touched in a different sequence, which is what makes merged
        fleet artifacts byte-identical regardless of shard completion
        order (:mod:`repro.telemetry.merge`).
        """
        self.collect()
        out: Dict[str, Any] = {}
        for family in self.families():
            samples = []
            for label_values, child in family.samples():
                labels = dict(sorted(zip(family.label_names, label_values)))
                if family.kind == "histogram":
                    samples.append({
                        "labels": labels, "count": child.count,
                        "sum": child.sum,
                        "buckets": [[le, n] for le, n in child.cumulative()
                                    if le != float("inf")],
                    })
                else:
                    samples.append({"labels": labels, "value": child.value})
            samples.sort(key=lambda s: sorted(s["labels"].items()))
            out[family.name] = {"type": family.kind, "help": family.help,
                                "samples": samples}
        return out
