"""Folding per-shard metric snapshots into one fleet snapshot.

A fleet run produces one :meth:`~repro.telemetry.metrics.MetricsRegistry.
snapshot` per shard.  This module merges them into a single snapshot of
the same schema, with type-correct semantics per family:

* **counter** — values sum (shard counters count disjoint work);
* **gauge** — values sum as well: every fleet gauge is an extensive
  quantity (clients simulated, channels open), and summing is the only
  merge that keeps ``merged == whole-run`` exact;
* **histogram** — counts, sums and per-bucket cumulative counts add
  element-wise (shards share bucket bounds by construction, and the
  merge refuses mismatched ones rather than guessing).

Determinism: samples are keyed on their *sorted label items*, families
on their names, and the merged output is emitted in sorted order — so
the result is byte-identical (via ``json.dumps(sort_keys=True)``)
whatever order the shard snapshots arrive in.  Combined with integer
counter values this gives the fleet report exact sum equality: the
merged totals equal the per-shard totals added on paper.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import ReproError

__all__ = ["merge_snapshots"]

# A sample's identity within a family: its sorted (label, value) items.
_SampleKey = Tuple[Tuple[str, str], ...]


def _key(sample: Dict[str, Any]) -> _SampleKey:
    return tuple(sorted(sample["labels"].items()))


def _merge_sample(kind: str, name: str, into: Dict[str, Any],
                  sample: Dict[str, Any]) -> None:
    if kind == "histogram":
        if [le for le, _ in into["buckets"]] != \
                [le for le, _ in sample["buckets"]]:
            raise ReproError(
                f"{name}: histogram bucket bounds differ across shards")
        into["count"] += sample["count"]
        into["sum"] += sample["sum"]
        into["buckets"] = [[le, n + m] for (le, n), (_, m)
                           in zip(into["buckets"], sample["buckets"])]
    else:
        into["value"] += sample["value"]


def merge_snapshots(snapshots: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold shard snapshots into one; order of ``snapshots`` is
    irrelevant to the result.

    Families missing from some shards merge fine (a shard that never
    touched a subsystem simply contributes nothing); a family appearing
    with different *types* across shards is a schema bug and raises.
    """
    merged: Dict[str, Dict[str, Any]] = {}
    merged_samples: Dict[str, Dict[_SampleKey, Dict[str, Any]]] = {}
    for snapshot in snapshots:
        for name in sorted(snapshot):
            family = snapshot[name]
            if name not in merged:
                merged[name] = {"type": family["type"],
                                "help": family["help"], "samples": []}
                merged_samples[name] = {}
            elif merged[name]["type"] != family["type"]:
                raise ReproError(
                    f"{name}: type differs across shards "
                    f"({merged[name]['type']} vs {family['type']})")
            kind = family["type"]
            by_key = merged_samples[name]
            for sample in family["samples"]:
                key = _key(sample)
                into = by_key.get(key)
                if into is None:
                    # Deep-enough copy: labels/buckets are ours to mutate.
                    into = dict(sample)
                    into["labels"] = dict(sorted(sample["labels"].items()))
                    if kind == "histogram":
                        into["buckets"] = [list(b)
                                           for b in sample["buckets"]]
                    by_key[key] = into
                else:
                    _merge_sample(kind, name, into, sample)
    out: Dict[str, Any] = {}
    for name in sorted(merged):
        samples: List[Dict[str, Any]] = [
            merged_samples[name][key]
            for key in sorted(merged_samples[name])]
        out[name] = {"type": merged[name]["type"],
                     "help": merged[name]["help"], "samples": samples}
    return out
