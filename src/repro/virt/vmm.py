"""Section 8 future work, built: offloaded VM packet demultiplexing.

"Offload-capable devices could perform more efficiently some of the
tasks that are performed today on the host CPUs, such as multiplexing
incoming network packets directly to the destination virtual machine."

Two VMM data paths over the same guest set:

* :class:`SoftwareVmm` — the host path: every frame lands in the host
  ring, the VMM's softirq classifies it on the host CPU and *copies* it
  into the destination guest's buffer (two L2 walks per payload), then
  wakes the guest.
* :class:`OffloadedVmm` — a demux Offcode on the NIC: classification
  runs on the device CPU and the payload is DMA'd *once*, directly into
  the destination guest's pinned buffer; the host CPU only ever runs
  guest work.

Guests are simulated host processes consuming their queues; the
experiment harness measures host CPU, cache traffic and per-guest
delivery counts for both paths.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.errors import ReproError
from repro.hostos.kernel import Kernel
from repro.hw.nic import Nic
from repro.net.packet import Packet
from repro.sim.engine import Event, Simulator
from repro.sim.resources import Store

__all__ = ["GuestVm", "SoftwareVmm", "OffloadedVmm"]

# VMM costs.
_CLASSIFY_HOST_NS = 2_500        # flow-table lookup on the host CPU
_CLASSIFY_DEVICE_NS = 3_000      # same lookup on the device CPU
_GUEST_WORK_NS = 4_000           # guest-side per-packet processing
_WAKE_GUEST_NS = 1_500


class GuestVm:
    """A guest: a port range and a receive queue drained by a vCPU."""

    def __init__(self, kernel: Kernel, name: str,
                 port_lo: int, port_hi: int) -> None:
        if port_lo > port_hi:
            raise ReproError(f"{name}: empty port range")
        self.kernel = kernel
        self.name = name
        self.port_lo = port_lo
        self.port_hi = port_hi
        self.queue: Store = Store(kernel.sim, capacity=1024,
                                  drop_when_full=True)
        self.packets_received = 0
        self._running = False

    def owns_port(self, port: int) -> bool:
        """True if ``port`` falls in this guest's range."""
        return self.port_lo <= port <= self.port_hi

    def start(self) -> None:
        """Spawn the guest's vCPU consume loop (idempotent)."""
        if not self._running:
            self._running = True
            self.kernel.sim.spawn(self._vcpu_loop(),
                                  name=f"vm-{self.name}")

    def _vcpu_loop(self) -> Generator[Event, None, None]:
        while True:
            packet: Packet = yield self.queue.get()
            # Guest processing always runs on the host CPU (it *is* the
            # host CPU, time-sliced) — identical under both VMMs.
            yield from self.kernel.cpu.execute(
                _GUEST_WORK_NS, context=f"guest-{self.name}")
            self.packets_received += 1


class _VmmBase:
    """Shared guest registry + classification."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.sim: Simulator = kernel.sim
        self.guests: List[GuestVm] = []
        self.delivered = 0
        self.unroutable = 0

    def add_guest(self, name: str, port_lo: int, port_hi: int) -> GuestVm:
        for guest in self.guests:
            if not (port_hi < guest.port_lo or port_lo > guest.port_hi):
                raise ReproError(
                    f"{name}: port range overlaps guest {guest.name}")
        guest = GuestVm(self.kernel, name, port_lo, port_hi)
        self.guests.append(guest)
        guest.start()
        return guest

    def _route(self, packet: Packet) -> Optional[GuestVm]:
        for guest in self.guests:
            if guest.owns_port(packet.dst.port):
                return guest
        return None


class SoftwareVmm(_VmmBase):
    """Host-based demux: classify + copy on the host CPU.

    Installs itself as the host NIC interrupt consumer: frames arrive
    through the normal DMA + interrupt path, then the VMM bottom half
    runs.
    """

    def __init__(self, kernel: Kernel, nic: Nic) -> None:
        super().__init__(kernel)
        self.nic = nic
        nic.set_interrupt_handler(self._on_interrupt)

    def _on_interrupt(self, vector: str, payload) -> None:
        if vector == "rx":
            self.sim.spawn(self._demux_bottom_half(), name="vmm-bh")

    def _demux_bottom_half(self) -> Generator[Event, None, None]:
        kernel = self.kernel
        yield from kernel.isr()
        packet: Packet = yield self.nic.host_rx_ring.get()
        yield from kernel.cpu.execute(_CLASSIFY_HOST_NS, context="vmm")
        guest = self._route(packet)
        if guest is None:
            self.unroutable += 1
            return
        # The defining cost of the software path: copy the payload from
        # the VMM's ring into the guest's address space.
        yield from kernel.copy_to_user(packet.size_bytes, context="vmm")
        yield from kernel.cpu.execute(_WAKE_GUEST_NS, context="vmm")
        yield guest.queue.put(packet)
        self.delivered += 1


class OffloadedVmm(_VmmBase):
    """NIC-resident demux: classify on the device, DMA straight to the
    destination guest's pinned buffer."""

    def __init__(self, kernel: Kernel, nic: Nic) -> None:
        super().__init__(kernel)
        self.nic = nic
        nic.install_rx_offload(self._device_demux)

    def _device_demux(self, packet: Packet
                      ) -> Generator[Event, None, bool]:
        yield from self.nic.run_on_device(_CLASSIFY_DEVICE_NS,
                                          context="vmm-offload")
        guest = self._route(packet)
        if guest is None:
            self.unroutable += 1
            return True      # swallowed: an unroutable frame is dropped
        # One DMA, directly into the destination guest's memory.
        yield from self.nic.dma_to_host(max(1, packet.size_bytes))
        if hasattr(packet, "received_at_ns"):
            packet.received_at_ns = self.sim.now
        yield guest.queue.put(packet)
        self.delivered += 1
        return True
