"""Virtualization future work (paper Section 8): VM packet demux."""

from repro.virt.vmm import GuestVm, OffloadedVmm, SoftwareVmm

__all__ = ["GuestVm", "OffloadedVmm", "SoftwareVmm"]
