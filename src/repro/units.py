"""Units and conversion helpers.

Simulated time is kept as **integer nanoseconds** throughout the library;
integers keep event ordering exact and runs reproducible.  Data sizes are
plain integer bytes.  This module centralises the conversion constants so
that magic numbers never appear at call sites.
"""

from __future__ import annotations

# --- time -----------------------------------------------------------------

NS = 1
US = 1_000 * NS
MS = 1_000 * US
SECOND = 1_000 * MS
MINUTE = 60 * SECOND

# --- data sizes -----------------------------------------------------------

BYTE = 1
KB = 1_024 * BYTE
MB = 1_024 * KB
GB = 1_024 * MB

# --- frequencies / rates ----------------------------------------------------

KHZ = 1_000
MHZ = 1_000 * KHZ
GHZ = 1_000 * MHZ

KBPS = 1_000          # bits per second
MBPS = 1_000 * KBPS
GBPS = 1_000 * MBPS


def ns_to_s(ns: int) -> float:
    """Convert integer nanoseconds to floating-point seconds."""
    return ns / SECOND


def ns_to_ms(ns: int) -> float:
    """Convert integer nanoseconds to floating-point milliseconds."""
    return ns / MS


def ns_to_us(ns: int) -> float:
    """Convert integer nanoseconds to floating-point microseconds."""
    return ns / US


def s_to_ns(seconds: float) -> int:
    """Convert seconds to integer nanoseconds (rounded)."""
    return round(seconds * SECOND)


def ms_to_ns(ms: float) -> int:
    """Convert milliseconds to integer nanoseconds (rounded)."""
    return round(ms * MS)


def us_to_ns(us: float) -> int:
    """Convert microseconds to integer nanoseconds (rounded)."""
    return round(us * US)


def cycles_to_ns(cycles: int, hz: float) -> int:
    """Time taken by ``cycles`` clock cycles on a ``hz``-frequency clock."""
    if hz <= 0:
        raise ValueError(f"clock frequency must be positive, got {hz}")
    return round(cycles * SECOND / hz)


def transfer_time_ns(size_bytes: int, bits_per_second: float) -> int:
    """Serialization delay for ``size_bytes`` over a ``bits_per_second`` link."""
    if bits_per_second <= 0:
        raise ValueError(
            f"bit rate must be positive, got {bits_per_second}")
    if size_bytes < 0:
        raise ValueError(f"size must be non-negative, got {size_bytes}")
    return round(size_bytes * 8 * SECOND / bits_per_second)
