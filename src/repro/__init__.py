"""repro — a reproduction of HYDRA (ASPLOS 2008).

"Tapping into the Fountain of CPUs — On Operating System Support for
Programmable Devices", Weinsberg, Dolev, Anker, Ben-Yehuda, Wyckoff.

The blessed public surface is :mod:`repro.api`: one module with every
name an application needs (``from repro.api import HydraRuntime, ...``).
This package root re-exports it lazily, so ``repro.api`` and any of its
names are also reachable as attributes of :mod:`repro` without forcing
the whole framework to import for users who only want a subpackage.

Packages:

* :mod:`repro.api` — the blessed public surface, re-exported here.
* :mod:`repro.sim` — discrete-event engine (from scratch).
* :mod:`repro.hw` — simulated hardware: CPUs, L2 cache, buses,
  programmable NIC / GPU / smart disk, power model.
* :mod:`repro.hostos` — simulated Linux-2.6-class kernel: ticks,
  scheduler latency, UDP sockets, NFS.
* :mod:`repro.net` — packets, links, gigabit switch, device-side ports.
* :mod:`repro.media` — synthetic MPEG streams and decode cost models.
* :mod:`repro.core` — the HYDRA framework itself: Offcodes, ODF
  manifests, channels and providers, the runtime, dynamic loaders, and
  the Section-5 ILP layout optimizer.
* :mod:`repro.tivopc` — the TiVoPC case study (servers, clients,
  testbed, metrics).
* :mod:`repro.evaluation` — drivers and reporting for every table and
  figure in the paper's evaluation.
"""

__version__ = "1.1.0"


def __getattr__(name):
    """Lazily resolve ``repro.api`` and its blessed names (PEP 562).

    Eagerly importing the facade here would cycle (core modules import
    ``repro.units`` during their own import); the lazy hook gives
    ``repro.api`` — and ``from repro import HydraRuntime`` for any
    facade name — without that cost.
    """
    import importlib
    import sys
    # Submodules resolve directly — routing them through repro.api would
    # cycle while a subpackage (which imports e.g. repro.units) is
    # itself mid-import.
    if name in _SUBPACKAGES:
        return importlib.import_module(f"repro.{name}")
    api = sys.modules.get("repro.api")
    if api is None and not name.startswith("_"):
        api = importlib.import_module("repro.api")
    if name in getattr(api, "__all__", ()):
        return getattr(api, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


_SUBPACKAGES = frozenset({
    "api", "core", "errors", "evaluation", "faults", "hostos", "hw",
    "media", "net", "sim", "telemetry", "tivopc", "units", "virt",
})
