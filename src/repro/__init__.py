"""repro — a reproduction of HYDRA (ASPLOS 2008).

"Tapping into the Fountain of CPUs — On Operating System Support for
Programmable Devices", Weinsberg, Dolev, Anker, Ben-Yehuda, Wyckoff.

Packages:

* :mod:`repro.sim` — discrete-event engine (from scratch).
* :mod:`repro.hw` — simulated hardware: CPUs, L2 cache, buses,
  programmable NIC / GPU / smart disk, power model.
* :mod:`repro.hostos` — simulated Linux-2.6-class kernel: ticks,
  scheduler latency, UDP sockets, NFS.
* :mod:`repro.net` — packets, links, gigabit switch, device-side ports.
* :mod:`repro.media` — synthetic MPEG streams and decode cost models.
* :mod:`repro.core` — the HYDRA framework itself: Offcodes, ODF
  manifests, channels and providers, the runtime, dynamic loaders, and
  the Section-5 ILP layout optimizer.
* :mod:`repro.tivopc` — the TiVoPC case study (servers, clients,
  testbed, metrics).
* :mod:`repro.evaluation` — drivers and reporting for every table and
  figure in the paper's evaluation.
"""

__version__ = "1.0.0"
