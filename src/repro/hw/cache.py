"""Set-associative cache model.

The paper's evaluation (Figure 10, Section 6.4) measures the **L2 cache
miss rate** of the server kernel under three server implementations and
shows that offloading leaves the host L2 as quiet as an idle system while
the host-based servers stream packet data through it and evict the
resident working set.

This module provides a faithful set-associative LRU cache: addresses are
mapped to sets, each set keeps its ways in LRU order, and per-access
hit/miss counts are recorded.  Streaming a packet buffer through
:meth:`Cache.access_range` therefore produces exactly the eviction
behaviour the paper attributes to the non-offloaded servers.

The model is deliberately timing-free: it classifies accesses; the *cost*
of a miss is charged by the CPU/OS models that call it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import HardwareError

__all__ = ["CacheConfig", "CacheStats", "Cache"]


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a cache.

    Defaults match the paper's testbed: a Pentium 4 with a 256 kB, 8-way,
    64-byte-line L2.
    """

    size_bytes: int = 256 * 1024
    line_bytes: int = 64
    associativity: int = 8

    def __post_init__(self) -> None:
        if not _is_pow2(self.line_bytes):
            raise HardwareError(f"line size must be a power of two: {self.line_bytes}")
        if self.size_bytes <= 0 or self.associativity <= 0:
            raise HardwareError("cache size and associativity must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise HardwareError(
                f"cache size {self.size_bytes} not divisible by "
                f"line*ways = {self.line_bytes * self.associativity}")
        if not _is_pow2(self.num_sets):
            raise HardwareError(f"number of sets must be a power of two: {self.num_sets}")

    @property
    def num_sets(self) -> int:
        """Number of sets (size / (line * ways))."""
        return self.size_bytes // (self.line_bytes * self.associativity)

    @property
    def num_lines(self) -> int:
        """Total line capacity."""
        return self.size_bytes // self.line_bytes


@dataclass
class CacheStats:
    """Aggregate access counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        """hits + misses."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """misses / accesses (0 when idle)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def snapshot(self) -> "CacheStats":
        """An independent copy of the counters."""
        return CacheStats(self.hits, self.misses, self.evictions, self.writebacks)

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        """Counters accumulated since ``earlier``."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            writebacks=self.writebacks - earlier.writebacks,
        )


class Cache:
    """A set-associative write-back LRU cache.

    Each set is a plain insertion-ordered ``dict`` mapping tag -> dirty
    flag, least-recently-used first: hits reinsert their tag (pop +
    store) to move it to the back, evictions take the front key.  A
    plain dict beats :class:`collections.OrderedDict` on this workload
    because the streaming servers make misses-with-eviction the common
    case, and dict inserts/pops are cheaper than maintaining the
    OrderedDict's doubly-linked list.
    """

    def __init__(self, config: Optional[CacheConfig] = None,
                 name: str = "L2") -> None:
        self.config = config or CacheConfig()
        self.name = name
        self.stats = CacheStats()
        self._set_mask = self.config.num_sets - 1
        self._line_shift = self.config.line_bytes.bit_length() - 1
        self._index_bits = self._set_mask.bit_length()
        self._ways = self.config.associativity
        self._sets: List[dict] = [
            dict() for _ in range(self.config.num_sets)]

    # -- core access -------------------------------------------------------

    def access(self, address: int, write: bool = False) -> bool:
        """Access one address; return True on hit, False on miss."""
        if address < 0:
            raise HardwareError(f"negative address: {address}")
        line = address >> self._line_shift
        tag = line >> self._index_bits
        cache_set = self._sets[line & self._set_mask]
        stats = self.stats
        if tag in cache_set:
            # LRU bump: reinsert at the back (dicts keep insertion order).
            dirty = cache_set.pop(tag)
            cache_set[tag] = dirty or write
            stats.hits += 1
            return True
        # Miss: fill, evicting LRU (the front key) if the set is full.
        if len(cache_set) >= self._ways:
            if cache_set.pop(next(iter(cache_set))):
                stats.writebacks += 1
            stats.evictions += 1
        cache_set[tag] = write
        stats.misses += 1
        return False

    def access_range(self, base: int, size: int, write: bool = False) -> Tuple[int, int]:
        """Touch every line in ``[base, base+size)``.

        Returns ``(hits, misses)`` for the range.  This is how buffer
        copies and packet payload touches are charged to the cache — the
        single hottest non-event loop in the simulation (a daemon wake
        walks 1250 lines), so the per-line lookup is inlined here and
        the counters accumulate in locals, folded into ``stats`` once.
        """
        if size < 0:
            raise HardwareError(f"negative range size: {size}")
        if size == 0:
            return (0, 0)
        if base < 0:
            raise HardwareError(f"negative address: {base}")
        first = base >> self._line_shift
        last = (base + size - 1) >> self._line_shift
        sets = self._sets
        mask = self._set_mask
        index_bits = self._index_bits
        ways = self._ways
        hits = misses = evictions = writebacks = 0
        for line in range(first, last + 1):
            tag = line >> index_bits
            cache_set = sets[line & mask]
            if tag in cache_set:
                dirty = cache_set.pop(tag)
                cache_set[tag] = dirty or write
                hits += 1
            else:
                if len(cache_set) >= ways:
                    if cache_set.pop(next(iter(cache_set))):
                        writebacks += 1
                    evictions += 1
                cache_set[tag] = write
                misses += 1
        stats = self.stats
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions
        stats.writebacks += writebacks
        return (hits, misses)

    # -- inspection ---------------------------------------------------------

    def contains(self, address: int) -> bool:
        """True if the line holding ``address`` is resident (no side effects)."""
        line = address >> self._line_shift
        index = line & self._set_mask
        tag = line >> self._index_bits
        return tag in self._sets[index]

    @property
    def resident_lines(self) -> int:
        """Lines currently cached across all sets."""
        return sum(len(s) for s in self._sets)

    def flush(self) -> int:
        """Invalidate everything; return the number of dirty lines written back."""
        dirty = 0
        for cache_set in self._sets:
            dirty += sum(1 for d in cache_set.values() if d)
            cache_set.clear()
        self.stats.writebacks += dirty
        return dirty


class SampledCacheMonitor:
    """Periodic miss-rate sampler, mirroring the paper's methodology.

    The paper samples the kernel L2 miss rate every 5 seconds during a
    10-minute run and normalizes to the idle system's rate.  This helper
    captures ``(time_ns, CacheStats-delta)`` windows.
    """

    def __init__(self, cache: Cache) -> None:
        self.cache = cache
        self.samples: List[Tuple[int, CacheStats]] = []
        self._last = cache.stats.snapshot()

    def sample(self, now_ns: int) -> CacheStats:
        """Record the window since the previous sample."""
        current = self.cache.stats.snapshot()
        window = current.delta(self._last)
        self._last = current
        self.samples.append((now_ns, window))
        return window

    def miss_rates(self) -> List[float]:
        """Per-window miss rates (windows with accesses only)."""
        return [s.miss_rate for _, s in self.samples if s.accesses]


# Re-exported here because monitors belong conceptually with the cache.
__all__.append("SampledCacheMonitor")
