"""Set-associative cache model.

The paper's evaluation (Figure 10, Section 6.4) measures the **L2 cache
miss rate** of the server kernel under three server implementations and
shows that offloading leaves the host L2 as quiet as an idle system while
the host-based servers stream packet data through it and evict the
resident working set.

This module provides a faithful set-associative LRU cache: addresses are
mapped to sets, each set keeps its ways in LRU order, and per-access
hit/miss counts are recorded.  Streaming a packet buffer through
:meth:`Cache.access_range` therefore produces exactly the eviction
behaviour the paper attributes to the non-offloaded servers.

The model is deliberately timing-free: it classifies accesses; the *cost*
of a miss is charged by the CPU/OS models that call it.

Performance: the hottest consumer is the kernel daemon wake, which walks
a ~1250-line buffer per period — >80 % of all line traffic.  Two
mechanisms keep this off the event loop's critical path:

* **Deferred classification.**  No simulated component consumes the
  hit/miss classification inline — callers fire ranged touches and the
  counters are only read at observation points (samplers, end-of-run
  metrics, tests).  :meth:`Cache.touch_range` therefore just appends
  ``(first_line, last_line, write)`` to an op log; the log is replayed
  in order — exactly, including LRU state — the moment anything
  observes the cache (``stats``, :meth:`access`, :meth:`access_range`,
  :meth:`contains`, :attr:`resident_lines`, :meth:`flush`, or a
  resolved :meth:`stats_pin`), or when the log hits its cap.  Samplers
  that only need counter *snapshots* take a :meth:`stats_pin` — a
  position in the log resolved lazily after the run.

* **Batched exact-LRU updates.**  With numpy available the whole cache
  lives in two arrays and every walk *segment* (the run of consecutive
  lines sharing one tag, which by construction touches consecutive,
  distinct sets) updates as a constant number of batched array
  operations, with fast paths for the dominant all-miss and
  repeat-walk (all-hit-at-MRU) cases.  Every set is kept permanently
  full by pre-filling it with negative *sentinel* tags (real tags are
  non-negative, so sentinels can never hit, and evicting one is
  exactly the real model's "insert into a not-yet-full set"), which
  removes the fill/evict branch without changing any counter.  Without
  numpy the model falls back to per-set ordered dicts and a per-line
  loop; the op log works identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import HardwareError

try:  # pragma: no cover - exercised implicitly everywhere numpy exists
    import numpy as _np
except ImportError:  # pragma: no cover - degraded environments only
    _np = None

__all__ = ["CacheConfig", "CacheStats", "Cache", "StatsPin"]

# Forced-drain threshold for the deferred-access log.  Big enough that a
# busy simulated second logs freely, small enough to bound memory (each
# entry is one small tuple).
_OPLOG_CAP = 65536


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a cache.

    Defaults match the paper's testbed: a Pentium 4 with a 256 kB, 8-way,
    64-byte-line L2.
    """

    size_bytes: int = 256 * 1024
    line_bytes: int = 64
    associativity: int = 8

    def __post_init__(self) -> None:
        if not _is_pow2(self.line_bytes):
            raise HardwareError(f"line size must be a power of two: {self.line_bytes}")
        if self.size_bytes <= 0 or self.associativity <= 0:
            raise HardwareError("cache size and associativity must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise HardwareError(
                f"cache size {self.size_bytes} not divisible by "
                f"line*ways = {self.line_bytes * self.associativity}")
        if not _is_pow2(self.num_sets):
            raise HardwareError(f"number of sets must be a power of two: {self.num_sets}")

    @property
    def num_sets(self) -> int:
        """Number of sets (size / (line * ways))."""
        return self.size_bytes // (self.line_bytes * self.associativity)

    @property
    def num_lines(self) -> int:
        """Total line capacity."""
        return self.size_bytes // self.line_bytes


@dataclass
class CacheStats:
    """Aggregate access counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        """hits + misses."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """misses / accesses (0 when idle)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def snapshot(self) -> "CacheStats":
        """An independent copy of the counters."""
        return CacheStats(self.hits, self.misses, self.evictions, self.writebacks)

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        """Counters accumulated since ``earlier``."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            writebacks=self.writebacks - earlier.writebacks,
        )


class StatsPin:
    """A lazily-resolved position in a cache's counter stream.

    Taken with :meth:`Cache.stats_pin` during a run; resolving it later
    yields the :class:`CacheStats` snapshot *as of the pin point*,
    computed by replaying the deferred-access log up to the pin.  This
    lets periodic samplers mark window boundaries without forcing a
    drain on the simulation's critical path.
    """

    __slots__ = ("_cache", "_index", "_value")

    def __init__(self, cache: "Cache", index: int) -> None:
        self._cache = cache
        self._index = index
        self._value: Optional[CacheStats] = None

    def resolve(self) -> CacheStats:
        """The counter snapshot at the pin point (drains if needed)."""
        if self._value is None:
            self._cache._drain()
        assert self._value is not None
        return self._value


class Cache:
    """A set-associative write-back LRU cache.

    Canonical state is a pair of numpy arrays — ``_ways_arr`` ``(sets,
    ways)`` int64 tags in LRU order (column 0 = LRU, last column = MRU)
    and ``_dirty_arr`` bools of the same shape.  All accesses, single or
    ranged, are batched per-segment array updates; the per-access cost
    is dominated by numpy call dispatch, so the update is shaped to use
    a constant, small number of array operations regardless of segment
    length.  Without numpy the model keeps one ordered dict per set
    (tag -> dirty, insertion order = LRU order) and loops per line.

    Fire-and-forget callers (every in-simulation component) should use
    :meth:`touch_range`, which defers classification to an op log; any
    observation (``stats``, :meth:`access`, :meth:`access_range`,
    :meth:`contains`, :attr:`resident_lines`, :meth:`flush`) replays
    the log first, so observed state is always exact.
    """

    def __init__(self, config: Optional[CacheConfig] = None,
                 name: str = "L2") -> None:
        self.config = config or CacheConfig()
        self.name = name
        self._stats = CacheStats()
        # Deferred (first_line, last_line, write) touches awaiting
        # classification, and unresolved StatsPins into that log.
        self._oplog: List[Tuple[int, int, bool]] = []
        self._pins: List[StatsPin] = []
        self._set_mask = self.config.num_sets - 1
        self._line_shift = self.config.line_bytes.bit_length() - 1
        self._index_bits = self._set_mask.bit_length()
        self._ways = self.config.associativity
        num_sets = self.config.num_sets
        ways = self._ways
        # Sentinel prefill: unique negative tags per row keep every set
        # exactly `ways` entries deep (see module docstring).
        self._sentinels = list(range(-ways, 0))
        if _np is not None:
            self._ways_arr = _np.tile(
                _np.arange(-ways, 0, dtype=_np.int64), (num_sets, 1))
            self._dirty_arr = _np.zeros((num_sets, ways), dtype=bool)
            self._rows = _np.arange(num_sets)[:, None]
            # Gather LUT: row p is the index vector that deletes
            # position p and shifts everything above it left (the last
            # column is a don't-care, overwritten with the new MRU).
            self._glut = _np.minimum(
                _np.arange(ways) + (_np.arange(ways) >=
                                    _np.arange(ways)[:, None]),
                ways - 1)
            self._dictsets: List[Optional[dict]] = []
        else:
            self._ways_arr = None
            self._dirty_arr = None
            self._dictsets = [
                dict.fromkeys(self._sentinels, False) for _ in range(num_sets)]

    # -- observation & laziness --------------------------------------------

    @property
    def stats(self) -> CacheStats:
        """Aggregate counters (exact: drains any deferred touches)."""
        if self._oplog:
            self._drain()
        return self._stats

    def stats_pin(self) -> StatsPin:
        """Mark the current point in the access stream for lazy stats.

        Returns a :class:`StatsPin` whose :meth:`~StatsPin.resolve`
        yields the counters as of this call, without draining the
        deferred-access log now.  Resolution order is exact even when
        eager accesses are interleaved, because every eager access
        drains the log first.
        """
        pin = StatsPin(self, len(self._oplog))
        if pin._index == 0:
            # Nothing pending: the snapshot is already known.
            pin._value = self._stats.snapshot()
        else:
            self._pins.append(pin)
        return pin

    def touch_range(self, base: int, size: int, write: bool = False) -> None:
        """Fire-and-forget :meth:`access_range`.

        Logs the touch; hit/miss classification and LRU movement are
        deferred until the next observation.  This is the entry point
        for simulated components, which never consume the
        classification inline.
        """
        if size <= 0:
            if size == 0:
                return
            raise HardwareError(f"negative range size: {size}")
        if base < 0:
            raise HardwareError(f"negative address: {base}")
        shift = self._line_shift
        log = self._oplog
        log.append((base >> shift, (base + size - 1) >> shift, write))
        if len(log) >= _OPLOG_CAP:
            self._drain()

    def _drain(self) -> None:
        """Replay the deferred-access log in order, resolving pins."""
        log = self._oplog
        pins = self._pins
        apply_lines = self._apply_lines
        if pins:
            pos = 0
            p = 0
            for first, last, write in log:
                while p < len(pins) and pins[p]._index <= pos:
                    pins[p]._value = self._stats.snapshot()
                    p += 1
                apply_lines(first, last, write)
                pos += 1
            while p < len(pins):
                pins[p]._value = self._stats.snapshot()
                p += 1
            del pins[:]
        else:
            for first, last, write in log:
                apply_lines(first, last, write)
        del log[:]

    # -- core access -------------------------------------------------------

    def access(self, address: int, write: bool = False) -> bool:
        """Access one address; return True on hit, False on miss."""
        if address < 0:
            raise HardwareError(f"negative address: {address}")
        if self._oplog:
            self._drain()
        line = address >> self._line_shift
        tag = line >> self._index_bits
        index = line & self._set_mask
        stats = self._stats
        if self._ways_arr is not None:
            h, _m, e, w = self._segment(index, index + 1, tag, write)
            stats.hits += h
            stats.misses += 1 - h
            stats.evictions += e
            stats.writebacks += w
            return bool(h)
        d = self._dictsets[index]
        if tag in d:
            # LRU bump: reinsert at the back (dicts keep insertion order).
            d[tag] = d.pop(tag) or write
            stats.hits += 1
            return True
        # Miss: evict the LRU (front key).  Sets are always full; a
        # sentinel victim is the "set not yet full" case and is free.
        lru = next(iter(d))
        if d.pop(lru):
            stats.writebacks += 1
        if lru >= 0:
            stats.evictions += 1
        d[tag] = write
        stats.misses += 1
        return False

    def access_range(self, base: int, size: int, write: bool = False) -> Tuple[int, int]:
        """Touch every line in ``[base, base+size)``.

        Returns ``(hits, misses)`` for the range.  This is how buffer
        copies and packet payload touches are charged to the cache — the
        single hottest non-event loop in the simulation (a daemon wake
        walks 1250 lines).  The range is split into segments of lines
        sharing one tag; consecutive lines in a segment land in
        consecutive, distinct sets, so each segment is one batched
        array update.
        """
        if size < 0:
            raise HardwareError(f"negative range size: {size}")
        if size == 0:
            return (0, 0)
        if base < 0:
            raise HardwareError(f"negative address: {base}")
        if self._oplog:
            self._drain()
        first = base >> self._line_shift
        last = (base + size - 1) >> self._line_shift
        return self._apply_lines(first, last, write)

    def _apply_lines(self, first: int, last: int,
                     write: bool) -> Tuple[int, int]:
        """Apply one logged/validated line-range touch; return (hits, misses)."""
        index_bits = self._index_bits
        hits = misses = evictions = writebacks = 0
        if self._ways_arr is not None:
            segment = self._segment
            for t in range(first >> index_bits, (last >> index_bits) + 1):
                block = t << index_bits
                lo = max(first, block) - block
                hi = min(last, block + (1 << index_bits) - 1) - block
                h, m, e, w = segment(lo, hi + 1, t, write)
                hits += h
                misses += m
                evictions += e
                writebacks += w
        else:
            dictsets = self._dictsets
            for t in range(first >> index_bits, (last >> index_bits) + 1):
                block = t << index_bits
                lo = max(first, block) - block
                hi = min(last, block + (1 << index_bits) - 1) - block
                for s in range(lo, hi + 1):
                    d = dictsets[s]
                    if t in d:
                        d[t] = d.pop(t) or write
                        hits += 1
                    else:
                        lru = next(iter(d))
                        if d.pop(lru):
                            writebacks += 1
                        if lru >= 0:
                            evictions += 1
                        d[t] = write
                        misses += 1
        stats = self._stats
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions
        stats.writebacks += writebacks
        return (hits, misses)

    def _segment(self, lo: int, hi1: int, tag: int,
                 write: bool) -> Tuple[int, int, int, int]:
        """Exact batched LRU update: one access of ``tag`` to each of
        the consecutive sets ``lo..hi1-1``.  Returns the four counter
        deltas.

        Dispatch count is what matters here — each numpy call costs
        ~1-10 us on these small arrays, dwarfing the arithmetic — so the
        all-miss case (the overwhelming majority: streaming walks evict
        rather than revisit) is special-cased as a pure column shift,
        and the general path derives hits from a positional lookup
        instead of an axis reduction and rotates rows with a single
        LUT-driven fancy-index gather.
        """
        np = _np
        n = hi1 - lo
        V = self._ways_arr[lo:hi1]
        Dv = self._dirty_arr[lo:hi1]
        if (V[:, -1] == tag).all():
            # All-hit-at-MRU fast path: a walk leaves its tag MRU in
            # every set it touches, so an undisturbed re-walk (the
            # per-tick kernel-text touch) changes no LRU order at all.
            if write:
                Dv[:, -1] = True
            return (n, 0, 0, 0)
        eq = V == tag
        victims = V[:, 0]
        vdirty = Dv[:, 0]
        if not eq.any():
            # All-miss fast path: every set evicts its LRU (column 0)
            # and shifts left; the new tag becomes MRU everywhere.
            ev_real = victims >= 0
            n_evict = int(np.count_nonzero(ev_real))
            ev_real &= vdirty
            n_wb = int(np.count_nonzero(ev_real))
            V[:, :-1] = V[:, 1:]
            V[:, -1] = tag
            Dv[:, :-1] = Dv[:, 1:]
            Dv[:, -1] = write
            return (0, n, n_evict, n_wb)
        # argmax of an all-False row is 0 — which is exactly the miss
        # behaviour we want (evict the LRU at position 0), so one argmax
        # serves both hit rotation and miss shifting.
        pos = eq.argmax(1)
        rows = self._rows[:n]
        hit = eq[rows[:, 0], pos]
        d_at = Dv[rows[:, 0], pos]
        # Stats come from the pre-update state: the victim is column 0.
        ev_real = victims >= 0
        ev_real &= ~hit
        n_hits = int(np.count_nonzero(hit))
        n_evict = int(np.count_nonzero(ev_real))
        ev_real &= vdirty
        n_wb = int(np.count_nonzero(ev_real))
        gather = self._glut[pos]
        newV = V[rows, gather]
        newD = Dv[rows, gather]
        newV[:, -1] = tag
        if write:
            newD[:, -1] = True
        else:
            newD[:, -1] = hit & d_at
        self._ways_arr[lo:hi1] = newV
        self._dirty_arr[lo:hi1] = newD
        return (n_hits, n - n_hits, n_evict, n_wb)

    # -- inspection ---------------------------------------------------------

    def contains(self, address: int) -> bool:
        """True if the line holding ``address`` is resident (no side effects)."""
        if self._oplog:
            self._drain()
        line = address >> self._line_shift
        index = line & self._set_mask
        tag = line >> self._index_bits
        if self._ways_arr is not None:
            return bool((self._ways_arr[index] == tag).any())
        return tag in self._dictsets[index]

    @property
    def resident_lines(self) -> int:
        """Lines currently cached across all sets (sentinels excluded)."""
        if self._oplog:
            self._drain()
        if self._ways_arr is not None:
            return int((self._ways_arr >= 0).sum())
        return sum(sum(1 for t in d if t >= 0) for d in self._dictsets)

    def flush(self) -> int:
        """Invalidate everything; return the number of dirty lines written back."""
        if self._oplog:
            self._drain()
        if self._ways_arr is not None:
            dirty = int((self._dirty_arr & (self._ways_arr >= 0)).sum())
            self._ways_arr[:] = _np.arange(-self._ways, 0, dtype=_np.int64)
            self._dirty_arr[:] = False
            self._stats.writebacks += dirty
            return dirty
        dirty = 0
        for d in self._dictsets:
            dirty += sum(1 for t, bit in d.items() if bit and t >= 0)
            d.clear()
            d.update(dict.fromkeys(self._sentinels, False))
        self._stats.writebacks += dirty
        return dirty


class SampledCacheMonitor:
    """Periodic miss-rate sampler, mirroring the paper's methodology.

    The paper samples the kernel L2 miss rate every 5 seconds during a
    10-minute run and normalizes to the idle system's rate.  This helper
    captures ``(time_ns, CacheStats-delta)`` windows.
    """

    def __init__(self, cache: Cache) -> None:
        self.cache = cache
        self.samples: List[Tuple[int, CacheStats]] = []
        self._last = cache.stats.snapshot()

    def sample(self, now_ns: int) -> CacheStats:
        """Record the window since the previous sample."""
        current = self.cache.stats.snapshot()
        window = current.delta(self._last)
        self._last = current
        self.samples.append((now_ns, window))
        return window

    def miss_rates(self) -> List[float]:
        """Per-window miss rates (windows with accesses only)."""
        return [s.miss_rate for _, s in self.samples if s.accesses]


# Re-exported here because monitors belong conceptually with the cache.
__all__.append("SampledCacheMonitor")
