"""Programmable peripheral device model.

A device, for HYDRA's purposes, is: an embedded CPU (slow, low-power —
the paper's reference point is an Intel XScale 600 MHz at 0.5 W), a slab
of local memory, a DMA engine on the I/O bus, and a firmware environment
whose capabilities (MMU, dynamic allocation, toolchain) gate which
Offcodes can run on it (Section 2's "manual steps" checklist).

Device *classes* (network / storage / display / host) are what ODF files
target — a manifest never names a concrete device, only a class plus
optional attribute filters (Section 3.3, Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Generator, List, Optional

from repro.errors import DeviceError, DeviceFailedError, DeviceMemoryError
from repro.hw.bus import HOST_MEMORY, Bus
from repro.hw.cpu import Cpu, CpuSpec
from repro.sim.engine import Event, Simulator
from repro.sim.trace import emit as trace_emit

__all__ = [
    "DeviceClass",
    "DeviceSpec",
    "DeviceHealth",
    "MemoryRegion",
    "DeviceMemoryAllocator",
    "ProgrammableDevice",
    "XSCALE_CPU",
]


class DeviceClass:
    """Canonical device-class identifiers used by ODF target sections."""

    HOST = "host"
    NETWORK = "network"
    STORAGE = "storage"
    DISPLAY = "display"

    ALL = (HOST, NETWORK, STORAGE, DISPLAY)


# The paper's low-power comparison point: Intel XScale 600 MHz, 0.5 W.
XSCALE_CPU = CpuSpec(name="xscale", frequency_hz=600e6,
                     active_watts=0.5, idle_watts=0.05)


class DeviceHealth:
    """Fault state of one device's embedded processor.

    Four states model the failure modes the fault-injection subsystem
    exercises:

    * ``RUNNING`` — normal operation;
    * ``STALLED`` — the firmware is wedged but recoverable: work queued
      against the device waits until :meth:`resume`;
    * ``CRASHED`` — the embedded CPU is gone; firmware execution and DMA
      raise :class:`~repro.errors.DeviceFailedError` immediately;
    * ``FENCED`` — post-recovery: the driver has reset the device into
      "dumb" fixed-function mode.  The hardware datapath works again
      (so the host receive path resumes) but the device is excluded from
      offloading by the layout resolver.

    The barrier is checked by :meth:`ProgrammableDevice.run_on_device`
    and the DMA verbs, so every firmware process observes the fault at
    its next instruction boundary — no polling anywhere.
    """

    RUNNING = "running"
    STALLED = "stalled"
    CRASHED = "crashed"
    FENCED = "fenced"

    def __init__(self, device: "ProgrammableDevice") -> None:
        self.device = device
        self.state = self.RUNNING
        self.crashed_at_ns: Optional[int] = None
        self.stalls = 0
        self._stall_waiters: List[Event] = []

    @property
    def ok(self) -> bool:
        """True while firmware execution can make progress."""
        return self.state in (self.RUNNING, self.FENCED)

    @property
    def crashed(self) -> bool:
        """True once the embedded CPU is dead (CRASHED, not FENCED)."""
        return self.state == self.CRASHED

    def crash(self) -> None:
        """Kill the embedded processor (idempotent).

        Processes blocked at the stall barrier fail with
        :class:`~repro.errors.DeviceFailedError`; any new firmware work
        fails at its next barrier check.
        """
        if self.state == self.CRASHED:
            return
        self.state = self.CRASHED
        self.crashed_at_ns = self.device.sim.now
        trace_emit(self.device.sim, "fault",
                   f"{self.device.name} crashed")
        waiters, self._stall_waiters = self._stall_waiters, []
        for event in waiters:
            event.fail(DeviceFailedError(
                f"device {self.device.name} crashed while stalled"))
            # Waiters are delivered into their processes; mark handled so
            # an abandoned waiter cannot crash the engine loop.
            event.defused = True  # type: ignore[attr-defined]

    def stall(self) -> None:
        """Wedge the firmware; queued work waits for :meth:`resume`."""
        if self.state != self.RUNNING:
            raise DeviceError(
                f"cannot stall {self.device.name} while {self.state}")
        self.state = self.STALLED
        self.stalls += 1
        trace_emit(self.device.sim, "fault",
                   f"{self.device.name} stalled")

    def resume(self) -> None:
        """Un-wedge a stalled device; blocked work continues."""
        if self.state != self.STALLED:
            raise DeviceError(
                f"cannot resume {self.device.name} while {self.state}")
        self.state = self.RUNNING
        trace_emit(self.device.sim, "fault",
                   f"{self.device.name} resumed")
        waiters, self._stall_waiters = self._stall_waiters, []
        for event in waiters:
            event.succeed()

    def fence(self) -> None:
        """Reset a crashed device into fixed-function mode.

        The recovery path calls this after declaring the device dead:
        its firmware stays unusable for Offcodes, but the dumb hardware
        datapath (host receive ring, DMA engine) works again — the
        paper's host-based baseline configuration.
        """
        if self.state != self.CRASHED:
            raise DeviceError(
                f"cannot fence {self.device.name} while {self.state}")
        self.state = self.FENCED
        trace_emit(self.device.sim, "fault",
                   f"{self.device.name} fenced (fixed-function mode)")

    def barrier(self) -> Generator[Event, None, None]:
        """Process generator: pass only while the device is healthy.

        Raises :class:`~repro.errors.DeviceFailedError` on a crashed
        device; blocks while stalled (and re-checks after every resume,
        because a stall can end in a crash).
        """
        while True:
            if self.state == self.CRASHED:
                raise DeviceFailedError(
                    f"device {self.device.name} has crashed")
            if self.state != self.STALLED:
                return
            waiter = Event(self.device.sim)
            self._stall_waiters.append(waiter)
            yield waiter


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a programmable device."""

    name: str
    device_class: str
    cpu: CpuSpec = XSCALE_CPU
    local_memory_bytes: int = 8 * 1024 * 1024
    has_mmu: bool = False
    has_dynamic_alloc: bool = True
    toolchain: str = "gcc-xscale"
    vendor: str = "generic"
    bus_type: str = "pci"
    mac_type: str = ""
    features: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if self.device_class not in DeviceClass.ALL:
            raise DeviceError(f"unknown device class {self.device_class!r}")
        if self.local_memory_bytes <= 0:
            raise DeviceError("device needs positive local memory")

    def has_feature(self, feature: str) -> bool:
        """True if the device advertises ``feature``."""
        return feature in self.features


@dataclass
class MemoryRegion:
    """An allocated region of device-local memory."""

    base: int
    size: int
    label: str = ""
    freed: bool = False

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.size


class DeviceMemoryAllocator:
    """First-fit allocator over a flat device address space.

    Returns real addresses because the dynamic-loading path (Section 4.2)
    links Offcode binaries against the address returned by
    ``AllocateOffcodeMemory``.
    """

    def __init__(self, capacity: int, base: int = 0x1000) -> None:
        if capacity <= 0:
            raise DeviceMemoryError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self.base = base
        self._free: List[List[int]] = [[base, capacity]]  # [start, size]
        self.allocated: Dict[int, MemoryRegion] = {}

    @property
    def free_bytes(self) -> int:
        """Unallocated capacity."""
        return sum(size for _, size in self._free)

    @property
    def used_bytes(self) -> int:
        """Allocated bytes (16-byte-aligned sizes)."""
        return self.capacity - self.free_bytes

    def allocate(self, size: int, label: str = "") -> MemoryRegion:
        """First-fit allocation; DeviceMemoryError when exhausted."""
        if size <= 0:
            raise DeviceMemoryError(f"allocation size must be positive: {size}")
        # 16-byte alignment, as a firmware loader would require.
        size = (size + 15) & ~15
        for hole in self._free:
            start, hole_size = hole
            if hole_size >= size:
                region = MemoryRegion(base=start, size=size, label=label)
                if hole_size == size:
                    self._free.remove(hole)
                else:
                    hole[0] = start + size
                    hole[1] = hole_size - size
                self.allocated[region.base] = region
                return region
        raise DeviceMemoryError(
            f"out of device memory: need {size}, largest hole "
            f"{max((s for _, s in self._free), default=0)}")

    def free(self, region: MemoryRegion) -> None:
        """Return a region (double frees raise); holes coalesce."""
        if region.freed or region.base not in self.allocated:
            raise DeviceMemoryError(f"double free of region at {region.base:#x}")
        del self.allocated[region.base]
        region.freed = True
        self._free.append([region.base, region.size])
        self._coalesce()

    def _coalesce(self) -> None:
        self._free.sort()
        merged: List[List[int]] = []
        for start, size in self._free:
            if merged and merged[-1][0] + merged[-1][1] == start:
                merged[-1][1] += size
            else:
                merged.append([start, size])
        self._free = merged


class ProgrammableDevice:
    """A peripheral with an embedded CPU, local memory and a DMA engine."""

    def __init__(self, sim: Simulator, spec: DeviceSpec, bus: Bus) -> None:
        self.sim = sim
        self.spec = spec
        self.bus = bus
        self.cpu = Cpu(sim, spec.cpu, name=f"{spec.name}-cpu")
        self.memory = DeviceMemoryAllocator(spec.local_memory_bytes)
        bus.attach(spec.name, self)
        # Host interrupt delivery: the kernel registers a handler here.
        self._interrupt_handler: Optional[Callable[[str, object], None]] = None
        self.interrupts_raised = 0
        # Firmware hook: the HYDRA device runtime installs itself here.
        self.firmware: Optional[object] = None
        # Fault state (crash / stall / fence); all firmware work and DMA
        # passes its barrier, so injected faults are observed promptly.
        self.health = DeviceHealth(self)

    @property
    def name(self) -> str:
        """The device's bus/endpoint name."""
        return self.spec.name

    @property
    def device_class(self) -> str:
        """The canonical device class (network/storage/display)."""
        return self.spec.device_class

    # -- DMA ------------------------------------------------------------------

    def dma_to_host(self, size_bytes: int) -> Generator[Event, None, int]:
        """Bus-master DMA from device memory into host memory."""
        yield from self.health.barrier()
        return (yield from self.bus.transfer(self.name, HOST_MEMORY, size_bytes))

    def dma_from_host(self, size_bytes: int) -> Generator[Event, None, int]:
        """Bus-master DMA from host memory into device memory."""
        yield from self.health.barrier()
        return (yield from self.bus.transfer(HOST_MEMORY, self.name, size_bytes))

    def dma_to_peer(self, peer: str, size_bytes: int
                    ) -> Generator[Event, None, int]:
        """Device-to-device DMA (may stage through host memory on PCI)."""
        yield from self.health.barrier()
        return (yield from self.bus.transfer(self.name, peer, size_bytes))

    # -- vectored (scatter-gather) DMA ------------------------------------------

    @property
    def supports_vectored_dma(self) -> bool:
        """True when the DMA engine chains descriptors (scatter-gather)."""
        return self.spec.has_feature("scatter-gather")

    def dma_to_host_vectored(self, sizes: List[int]
                             ) -> Generator[Event, None, int]:
        """One chained DMA moving several buffers into host memory."""
        yield from self.health.barrier()
        return (yield from self.bus.transfer_scatter(self.name, HOST_MEMORY,
                                                     sizes))

    def dma_from_host_vectored(self, sizes: List[int]
                               ) -> Generator[Event, None, int]:
        """One chained DMA moving several host buffers into the device."""
        yield from self.health.barrier()
        return (yield from self.bus.transfer_scatter(HOST_MEMORY, self.name,
                                                     sizes))

    def dma_to_peer_vectored(self, peer: str, sizes: List[int]
                             ) -> Generator[Event, None, int]:
        """One chained device-to-device DMA for a scatter-gather list."""
        yield from self.health.barrier()
        return (yield from self.bus.transfer_scatter(self.name, peer, sizes))

    # -- host interrupts ---------------------------------------------------------

    def set_interrupt_handler(self, handler: Callable[[str, object], None]) -> None:
        """Install the host-side interrupt handler (done by the kernel)."""
        self._interrupt_handler = handler

    def raise_interrupt(self, vector: str, payload: object = None) -> None:
        """Signal the host CPU.  No-op cost here; the kernel charges ISR time."""
        self.interrupts_raised += 1
        if self._interrupt_handler is not None:
            self._interrupt_handler(vector, payload)

    # -- firmware execution -------------------------------------------------------

    def run_on_device(self, duration_ns: int, context: str = "firmware"
                      ) -> Generator[Event, None, None]:
        """Charge work to the device's embedded CPU."""
        yield from self.health.barrier()
        yield from self.cpu.execute(duration_ns, context=context)

    def fence(self) -> None:
        """Driver-reset a crashed device into fixed-function mode.

        Subclasses extend this to restore their dumb datapath (the NIC
        drops its firmware receive-offload handler, for example).
        """
        self.health.fence()

    def matches(self, device_class: str,
                bus: Optional[str] = None,
                mac: Optional[str] = None,
                vendor: Optional[str] = None) -> bool:
        """ODF device-class matching (Figure 4's ``<device-class>`` entry)."""
        if device_class != self.spec.device_class:
            return False
        if bus and bus != self.spec.bus_type:
            return False
        if mac and mac != self.spec.mac_type:
            return False
        if vendor and vendor.lower() != self.spec.vendor.lower():
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Device {self.name} class={self.device_class}>"
