"""Graphics processing unit model.

The GPU's roles in the paper are (a) hosting the Decoder Offcode — it
"may have specialized MPEG support on board" — and (b) owning the
framebuffer, so a decoded frame written by an on-GPU Offcode appears on
screen "without involving the host CPU at all" (Section 1.1).

The model captures both: a decode-assist feature that decodes MPEG
frames at a fixed per-byte device cost (much cheaper than a software
decode on the host), and a framebuffer region in device memory with a
counter of displayed frames.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.hw.bus import Bus
from repro.hw.device import DeviceClass, DeviceSpec, MemoryRegion, ProgrammableDevice
from repro.sim.engine import Event, Simulator

__all__ = ["GpuSpec", "Gpu"]


def GpuSpec(name: str = "gpu0", vendor: str = "generic-gfx",
            local_memory_bytes: int = 128 * 1024 * 1024) -> DeviceSpec:
    """DeviceSpec factory for a programmable graphics adapter."""
    return DeviceSpec(
        name=name,
        device_class=DeviceClass.DISPLAY,
        local_memory_bytes=local_memory_bytes,
        vendor=vendor,
        bus_type="pci",
        features=frozenset({"mpeg-assist", "framebuffer", "dma-master",
                            "scatter-gather"}),
    )


class Gpu(ProgrammableDevice):
    """A graphics adapter with MPEG decode assist and a framebuffer."""

    # Hardware-assisted MPEG decode cost, per compressed byte, on-device.
    DECODE_ASSIST_NS_PER_BYTE = 2
    # Fixed cost of committing a frame to the framebuffer / scanout.
    DISPLAY_COMMIT_NS = 5_000

    def __init__(self, sim: Simulator, bus: Bus,
                 spec: Optional[DeviceSpec] = None,
                 framebuffer_bytes: int = 8 * 1024 * 1024) -> None:
        super().__init__(sim, spec or GpuSpec(), bus)
        self.framebuffer: MemoryRegion = self.memory.allocate(
            framebuffer_bytes, label="framebuffer")
        self.frames_displayed = 0
        self.bytes_decoded = 0

    def decode_frame(self, compressed_bytes: int
                     ) -> Generator[Event, None, int]:
        """Hardware-assisted decode; returns the decoded (raw) size.

        MPEG-1/2 at SD resolutions decompresses at roughly 1:20; the exact
        ratio is irrelevant to the evaluation, only that raw frames are
        much larger than the stream — which is why decoding *at* the GPU
        (raw frames never cross the bus) beats decoding at the NIC.
        """
        if compressed_bytes <= 0:
            return 0
        yield from self.run_on_device(
            compressed_bytes * self.DECODE_ASSIST_NS_PER_BYTE,
            context="gpu-decode")
        self.bytes_decoded += compressed_bytes
        return compressed_bytes * 20

    def display_frame(self, raw_bytes: int) -> Generator[Event, None, None]:
        """Commit a decoded frame to the framebuffer (device-local write)."""
        yield from self.run_on_device(self.DISPLAY_COMMIT_NS,
                                      context="gpu-display")
        self.frames_displayed += 1

    def host_blit(self, raw_bytes: int) -> Generator[Event, None, None]:
        """Host-driven display path: raw frame DMA'd from host memory.

        Used by the non-offloaded client, where decode happens on the host
        CPU and every raw frame crosses the bus into the framebuffer.
        """
        yield from self.dma_from_host(raw_bytes)
        yield from self.run_on_device(self.DISPLAY_COMMIT_NS,
                                      context="gpu-display")
        self.frames_displayed += 1
