"""Host CPU model with per-context utilization accounting.

The evaluation reports CPU utilization medians/averages/std-devs sampled
over a run (Tables 3 and 4).  The model is a single execution resource
(the paper's testbed used single-core Pentium 4 hosts) on which simulated
processes charge work either in *cycles* or directly in nanoseconds.
Every busy interval is attributed to a context label (``"idle-daemons"``,
``"server"``, ``"kernel"``, ...) so experiments can both sample total
utilization and break it down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro import units
from repro.errors import HardwareError
from repro.sim.engine import Event, Simulator
from repro.sim.resources import Resource

__all__ = ["CpuSpec", "Cpu", "CpuSampler"]


@dataclass(frozen=True)
class CpuSpec:
    """Static description of a CPU.

    Defaults match the paper's hosts: 2.4 GHz Intel Pentium 4.
    ``active_watts``/``idle_watts`` feed the power model (the paper quotes
    68 W for a Pentium 4 2.8 GHz; we scale for the 2.4 GHz testbed parts).
    """

    name: str = "pentium4"
    frequency_hz: float = 2.4e9
    active_watts: float = 58.0
    idle_watts: float = 9.0

    def cycles_to_ns(self, cycles: int) -> int:
        """Wall time of ``cycles`` at this CPU's frequency."""
        return units.cycles_to_ns(cycles, self.frequency_hz)


class Cpu:
    """A single simulated CPU with FIFO contention and busy accounting."""

    def __init__(self, sim: Simulator, spec: Optional[CpuSpec] = None,
                 name: str = "cpu0") -> None:
        self.sim = sim
        self.spec = spec or CpuSpec()
        self.name = name
        self._resource = Resource(sim, capacity=1)
        self.busy_by_context: Dict[str, int] = {}
        self.total_busy = 0

    # -- execution ----------------------------------------------------------

    def execute(self, duration_ns: int, context: str = "anonymous"
                ) -> Generator[Event, None, None]:
        """Process generator: occupy the CPU for ``duration_ns``.

        Usage inside a simulated process::

            yield from cpu.execute(units.us_to_ns(230), context="server")
        """
        if duration_ns < 0:
            raise HardwareError(f"negative CPU work: {duration_ns}")
        yield self._resource.request()
        try:
            # Bare-int yield: the engine's allocation-free fused sleep.
            yield duration_ns
        finally:
            self._resource.release()
            self.total_busy += duration_ns
            self.busy_by_context[context] = (
                self.busy_by_context.get(context, 0) + duration_ns)

    def execute_cycles(self, cycles: int, context: str = "anonymous"
                       ) -> Generator[Event, None, None]:
        """Occupy the CPU for ``cycles`` at the CPU's clock frequency."""
        yield from self.execute(self.spec.cycles_to_ns(cycles), context=context)

    # -- inspection ---------------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while something is executing."""
        return self._resource.in_use > 0

    @property
    def queue_depth(self) -> int:
        """Jobs waiting for the CPU (excluding the current holder)."""
        return len(self._resource._waiters)

    def utilization(self, since: int = 0) -> float:
        """Busy fraction of wall time from ``since`` to now."""
        return self._resource.utilization(since)

    def context_share(self, context: str) -> float:
        """Fraction of all busy time attributed to ``context``."""
        if self.total_busy == 0:
            return 0.0
        return self.busy_by_context.get(context, 0) / self.total_busy


class CpuSampler:
    """Windowed utilization sampler (the paper samples every 5 s).

    Each call to :meth:`sample` records the utilization of the window since
    the previous call, computed from the CPU's cumulative busy time.
    """

    def __init__(self, cpu: Cpu) -> None:
        self.cpu = cpu
        self.samples: List[Tuple[int, float]] = []
        self._last_time = cpu.sim.now
        self._last_busy = self._current_busy()

    def _current_busy(self) -> int:
        busy = self.cpu._resource.busy_time
        if self.cpu._resource._busy_since is not None:
            busy += self.cpu.sim.now - self.cpu._resource._busy_since
        return busy

    def sample(self) -> float:
        """Record and return utilization over the window just ended."""
        now = self.cpu.sim.now
        busy = self._current_busy()
        window = now - self._last_time
        util = (busy - self._last_busy) / window if window > 0 else 0.0
        self.samples.append((now, util))
        self._last_time = now
        self._last_busy = busy
        return util

    def utilizations(self) -> List[float]:
        """The recorded per-window utilizations."""
        return [u for _, u in self.samples]
