"""System power accounting.

Offloading argument #3 in the paper (Section 1.1): "A Pentium 4 2.8 GHz
processor consumes 68 W whereas an Intel XScale 600 MHz processor ...
consumes 0.5 W, two orders of magnitude less."  The power model
integrates each registered CPU's idle and active power over its measured
busy time, so the ablation bench can show the energy consequence of
moving the same logical work from the host to device CPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro import units
from repro.hw.cpu import Cpu

__all__ = ["PowerModel", "ComponentEnergy"]


@dataclass
class ComponentEnergy:
    """Energy breakdown for one component over a window."""

    name: str
    busy_seconds: float
    idle_seconds: float
    joules: float

    @property
    def average_watts(self) -> float:
        """Energy over the window divided by its duration."""
        total = self.busy_seconds + self.idle_seconds
        return self.joules / total if total > 0 else 0.0


class PowerModel:
    """Tracks registered CPUs and integrates their energy over time.

    The model assumes two-level power (idle watts when not executing,
    active watts when executing), which is the granularity of the paper's
    claim; it deliberately ignores DVFS and sleep states.
    """

    def __init__(self) -> None:
        self._cpus: Dict[str, Cpu] = {}

    def register(self, cpu: Cpu) -> None:
        """Track a CPU's energy (each CPU once)."""
        if cpu.name in self._cpus:
            raise ValueError(f"cpu {cpu.name!r} already registered")
        self._cpus[cpu.name] = cpu

    def component_energy(self, name: str, window_start_ns: int = 0) -> ComponentEnergy:
        """Energy consumed by one CPU between ``window_start_ns`` and now."""
        cpu = self._cpus[name]
        window_ns = cpu.sim.now - window_start_ns
        window_s = units.ns_to_s(max(0, window_ns))
        busy_s = min(window_s, units.ns_to_s(cpu.total_busy))
        idle_s = window_s - busy_s
        joules = (busy_s * cpu.spec.active_watts
                  + idle_s * cpu.spec.idle_watts)
        return ComponentEnergy(name=name, busy_seconds=busy_s,
                               idle_seconds=idle_s, joules=joules)

    def total_joules(self, window_start_ns: int = 0) -> float:
        """Machine-wide energy since ``window_start_ns``."""
        return sum(self.component_energy(n, window_start_ns).joules
                   for n in self._cpus)

    def breakdown(self, window_start_ns: int = 0) -> List[ComponentEnergy]:
        """Per-component energy records, sorted by name."""
        return [self.component_energy(n, window_start_ns)
                for n in sorted(self._cpus)]
