"""Programmable network interface card.

Models the paper's 3Com 3C985B-SX: a gigabit NIC with an embedded
processor and enough local memory to host firmware extensions (Offcodes).

Two receive paths exist, matching the paper's host vs. offloaded modes:

* **Host path** — the packet is DMA'd into a host ring buffer and an
  interrupt is raised; the simulated kernel then runs the ISR, charges
  protocol-processing CPU time and delivers to a socket.
* **Offload path** — a handler installed by the HYDRA device runtime runs
  directly on the NIC's CPU; the payload never crosses the bus unless the
  handler moves it.

Transmission likewise either originates from host memory (kernel path,
one host-memory bus crossing) or from device memory (offloaded path,
no host involvement).

The ``scatter-gather`` feature advertised by :func:`NicSpec` is what the
vectored channel path keys on: a channel provider may chain a whole
:class:`~repro.core.call.CallBatch` into one descriptor list and move it
across the bus as a single transaction
(:meth:`~repro.hw.device.ProgrammableDevice.dma_to_peer_vectored`).
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.errors import DeviceError, DeviceFailedError
from repro.hw.bus import Bus
from repro.hw.device import DeviceClass, DeviceSpec, ProgrammableDevice
from repro.sim.engine import Event, Simulator
from repro.sim.resources import Store

__all__ = ["NicSpec", "Nic"]


def NicSpec(name: str = "nic0", vendor: str = "3COM",
            local_memory_bytes: int = 8 * 1024 * 1024,
            extra_features: tuple = ()) -> DeviceSpec:
    """DeviceSpec factory for a programmable gigabit NIC."""
    return DeviceSpec(
        name=name,
        device_class=DeviceClass.NETWORK,
        local_memory_bytes=local_memory_bytes,
        vendor=vendor,
        bus_type="pci",
        mac_type="ethernet",
        features=frozenset(
            {"scatter-gather", "multicast-hw", "dma-master", "csum-offload"}
            | set(extra_features)),
    )


class Nic(ProgrammableDevice):
    """A programmable NIC with host and offloaded receive paths."""

    # Fixed per-packet firmware costs (descriptor handling, MAC filtering).
    RX_FIRMWARE_NS = 1_500
    TX_FIRMWARE_NS = 1_200

    def __init__(self, sim: Simulator, bus: Bus,
                 spec: Optional[DeviceSpec] = None) -> None:
        super().__init__(sim, spec or NicSpec(), bus)
        # Host receive ring: holds packets DMA'd to host memory awaiting
        # the kernel.  Fixed-size, drop-on-full, like real descriptor rings.
        self.host_rx_ring: Store = Store(sim, capacity=256, drop_when_full=True)
        # Offloaded handler: packet -> generator run on the device CPU.
        self._rx_offload_handler: Optional[Callable] = None
        # Wire hook, installed by the network substrate.
        self._wire_tx: Optional[Callable] = None
        self.rx_packets = 0
        self.tx_packets = 0
        # Frames black-holed while the embedded processor was crashed
        # (link up, firmware dead — nothing can even DMA them).
        self.rx_dropped_dead = 0

    # -- wiring (called by repro.net) ------------------------------------------

    def attach_wire(self, transmit: Callable) -> None:
        """Install the function that puts a packet on the physical medium."""
        self._wire_tx = transmit

    # -- offload control (called by the HYDRA runtime) ----------------------------

    def install_rx_offload(self, handler: Callable) -> None:
        """Divert received packets to ``handler`` on the device CPU.

        ``handler(packet)`` must be a generator (a device process body).
        If the generator returns ``False`` the packet was not claimed and
        falls through to the host path (DMA + interrupt); any other return
        value means the device consumed it.
        """
        if self._rx_offload_handler is not None:
            raise DeviceError(f"{self.name}: rx offload handler already installed")
        self._rx_offload_handler = handler

    def remove_rx_offload(self) -> None:
        """Restore the pure host receive path."""
        self._rx_offload_handler = None

    @property
    def rx_offloaded(self) -> bool:
        """True while a firmware receive handler is installed."""
        return self._rx_offload_handler is not None

    # -- receive ----------------------------------------------------------------

    def receive_packet(self, packet) -> None:
        """Entry point from the wire (called by the link model)."""
        if self.health.crashed:
            # Dead firmware cannot even post descriptors: the frame is
            # black-holed at the MAC, exactly like a wedged real NIC.
            self.rx_dropped_dead += 1
            return
        self.rx_packets += 1
        self.sim.spawn(self._rx_path(packet), name=f"{self.name}-rx")

    def _rx_path(self, packet) -> Generator[Event, None, None]:
        try:
            yield from self.run_on_device(self.RX_FIRMWARE_NS,
                                          context="nic-rx")
            if self._rx_offload_handler is not None:
                consumed = yield from self._rx_offload_handler(packet)
                if consumed is not False:
                    return
            # Host path: DMA payload to the host ring, then interrupt.
            yield from self.dma_to_host(max(1, packet.size_bytes))
        except DeviceFailedError:
            # Crash mid-frame: the packet is lost, the simulation is not.
            self.rx_dropped_dead += 1
            return
        # Hardware receive timestamp: taken at DMA completion, before
        # any host-side processing can skew it.
        if hasattr(packet, "received_at_ns"):
            packet.received_at_ns = self.sim.now
        stored = yield self.host_rx_ring.put(packet)
        if stored:
            self.raise_interrupt("rx", packet)

    # -- fault recovery ----------------------------------------------------------

    def fence(self) -> None:
        """Reset to dumb mode: drop the firmware handler, keep the wire.

        After the watchdog declares this NIC dead, the recovery path
        fences it so frames flow through the pure host path again (DMA
        ring + interrupt) — the paper's host-based baseline.
        """
        super().fence()
        self._rx_offload_handler = None

    # -- transmit ----------------------------------------------------------------

    def transmit_from_host(self, packet) -> Generator[Event, None, None]:
        """Kernel tx path: DMA the frame from host memory, then send."""
        yield from self.dma_from_host(max(1, packet.size_bytes))
        yield from self._transmit(packet)

    def transmit_from_device(self, packet) -> Generator[Event, None, None]:
        """Offloaded tx path: the frame already lives in device memory."""
        yield from self._transmit(packet)

    def _transmit(self, packet) -> Generator[Event, None, None]:
        if self._wire_tx is None:
            raise DeviceError(f"{self.name} is not attached to a network")
        yield from self.run_on_device(self.TX_FIRMWARE_NS, context="nic-tx")
        self.tx_packets += 1
        self._wire_tx(packet)
