"""Host machine assembly.

A :class:`Machine` wires together the hardware of one host: CPU, L2
cache, the I/O bus, the power model and any programmable devices.  The
default :class:`MachineSpec` reproduces the paper's testbed nodes:
2.4 GHz Pentium 4, 512 MB RAM, 256 kB L2, programmable 3Com NIC.

The OS model (:mod:`repro.hostos`) attaches *on top of* a machine; the
hardware layer knows nothing about kernels, which keeps the dependency
graph acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import HardwareError
from repro.hw.bus import Bus, BusSpec
from repro.hw.cache import Cache, CacheConfig
from repro.hw.cpu import Cpu, CpuSpec
from repro.hw.device import DeviceSpec, ProgrammableDevice
from repro.hw.disk import SmartDisk
from repro.hw.gpu import Gpu
from repro.hw.nic import Nic
from repro.hw.power import PowerModel
from repro.sim.engine import Simulator

__all__ = ["MachineSpec", "Machine"]


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a host (defaults = the paper's testbed)."""

    name: str = "host"
    cpu: CpuSpec = field(default_factory=CpuSpec)
    ram_bytes: int = 512 * 1024 * 1024
    l2: CacheConfig = field(default_factory=CacheConfig)
    bus: BusSpec = field(default_factory=BusSpec)


class Machine:
    """One host: CPU + L2 + I/O bus + programmable devices."""

    def __init__(self, sim: Simulator, spec: Optional[MachineSpec] = None) -> None:
        self.sim = sim
        self.spec = spec or MachineSpec()
        self.cpu = Cpu(sim, self.spec.cpu, name=f"{self.spec.name}-cpu")
        self.l2 = Cache(self.spec.l2, name=f"{self.spec.name}-L2")
        self.bus = Bus(sim, self.spec.bus)
        # Bus specs share generic names ("pcie"); key the telemetry
        # track on the machine so multi-host traces stay readable.
        self.bus.telemetry_track = f"bus:{self.spec.name}"
        self.devices: Dict[str, ProgrammableDevice] = {}
        self.power = PowerModel()
        self.power.register(self.cpu)

    @property
    def name(self) -> str:
        """The host's name (also its switch station name)."""
        return self.spec.name

    # -- device management ---------------------------------------------------

    def _register(self, device: ProgrammableDevice) -> ProgrammableDevice:
        if device.name in self.devices:
            raise HardwareError(
                f"device {device.name!r} already present on {self.name}")
        self.devices[device.name] = device
        self.power.register(device.cpu)
        return device

    def add_nic(self, spec: Optional[DeviceSpec] = None) -> Nic:
        """Attach a programmable NIC to this machine's bus."""
        return self._register(Nic(self.sim, self.bus, spec))  # type: ignore[return-value]

    def add_spin_nic(self, spec: Optional[DeviceSpec] = None):
        """Attach a sPIN-capable NIC (per-packet handler offcodes)."""
        from repro.hw.spin import SpinNic
        return self._register(SpinNic(self.sim, self.bus, spec))

    def add_gpu(self, spec: Optional[DeviceSpec] = None) -> Gpu:
        """Attach a programmable graphics adapter."""
        return self._register(Gpu(self.sim, self.bus, spec))  # type: ignore[return-value]

    def add_disk(self, spec: Optional[DeviceSpec] = None) -> SmartDisk:
        """Attach a programmable disk controller."""
        return self._register(SmartDisk(self.sim, self.bus, spec))  # type: ignore[return-value]

    def add_device(self, spec: DeviceSpec) -> ProgrammableDevice:
        """Attach a generic programmable device."""
        return self._register(ProgrammableDevice(self.sim, spec, self.bus))

    def device(self, name: str) -> ProgrammableDevice:
        """Attached device by name (HardwareError if absent)."""
        try:
            return self.devices[name]
        except KeyError:
            raise HardwareError(
                f"no device {name!r} on {self.name}; "
                f"have {sorted(self.devices)}") from None

    def devices_of_class(self, device_class: str):
        """All devices of a given class, in attach order."""
        return [d for d in self.devices.values()
                if d.device_class == device_class]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Machine {self.name} devices={sorted(self.devices)}>"
