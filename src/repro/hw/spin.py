"""sPIN-style NIC: per-packet handler offcodes in the packet path.

The sPIN model (Hoefler et al.; FPsPIN is the FPGA realization) splits a
packet's in-network program into three tiny handlers — **header**,
**payload**, **completion** — that the NIC runs at line rate as each
packet arrives.  Handlers are deliberately small: the device model
enforces a **cycle budget** per packet, and a packet whose handler chain
would blow the budget is punted to the host path instead of stalling
the line.

:class:`SpinNic` layers this on the existing :class:`~repro.hw.nic.Nic`
offload machinery: the handler chain is installed through
``install_rx_offload``, so the host fallback, crash black-holing, and
``fence()`` (recovery drops the handlers, frames flow to the host
ring again) all come from the base device model unchanged.

Handler contract
----------------

Handlers are plain callables (their *cost* is modeled by the device,
their *logic* runs instantly — same convention as Offcode method
bodies)::

    def header(packet) -> verdict      # runs on the L2/L3 header
    def payload(packet) -> verdict     # runs over the payload bytes
    def completion(packet) -> None     # bookkeeping after the verdict

A verdict is :data:`DROP` (filtered in-network), :data:`TO_HOST`
(escalate: DMA + interrupt, the classic path), or anything else
(``None``) meaning the NIC consumed the packet.  The header handler's
verdict can short-circuit the payload handler: a DROP or TO_HOST from
the header skips payload processing entirely (headers are parsed before
payload DMA completes, exactly why sPIN separates them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.errors import DeviceError
from repro.hw.bus import Bus
from repro.hw.device import DeviceSpec, ProgrammableDevice
from repro.hw.nic import Nic, NicSpec
from repro.sim.engine import Event, Simulator

__all__ = ["SpinNicSpec", "SpinHandlers", "SpinNic", "DROP", "TO_HOST",
           "SPIN_FEATURE"]

# Handler verdicts.
DROP = "drop"
TO_HOST = "host"

# DeviceSpec feature advertising per-packet handler support (the layout
# resolver keys SoftwareRequirements on it).
SPIN_FEATURE = "spin"

# Default per-packet handler-cycle budget: at gigabit line rate a
# 1500-byte frame arrives every ~12 µs; a handler chain must finish well
# inside that to sustain line rate, so the default leaves headroom for
# the fixed RX firmware cost too.
DEFAULT_BUDGET_NS = 8_000


def SpinNicSpec(name: str = "nic0", **kwargs) -> DeviceSpec:
    """A :func:`~repro.hw.nic.NicSpec` that advertises ``spin``."""
    extra = set(kwargs.pop("extra_features", ()))
    extra.add(SPIN_FEATURE)
    return NicSpec(name=name, extra_features=tuple(sorted(extra)), **kwargs)


@dataclass
class SpinHandlers:
    """One packet program: the three handlers plus their modeled costs.

    The cost fields are what the budget check prices: ``header_ns`` and
    ``completion_ns`` are flat, the payload handler scales with packet
    size (it walks the bytes).  Any handler may be ``None`` (skipped,
    costs nothing).
    """

    header: Optional[Callable] = None
    payload: Optional[Callable] = None
    completion: Optional[Callable] = None
    header_ns: int = 200
    payload_ns_per_byte: float = 0.25
    completion_ns: int = 150

    def projected_ns(self, size_bytes: int) -> int:
        """Worst-case handler-chain time for one packet of this size."""
        total = 0
        if self.header is not None:
            total += self.header_ns
        if self.payload is not None:
            total += round(size_bytes * self.payload_ns_per_byte)
        if self.completion is not None:
            total += self.completion_ns
        return total


class SpinNic(Nic):
    """A NIC whose receive path runs sPIN handler chains."""

    def __init__(self, sim: Simulator, bus: Bus,
                 spec: Optional[DeviceSpec] = None) -> None:
        super().__init__(sim, bus, spec or SpinNicSpec())
        if not self.spec.has_feature(SPIN_FEATURE):
            raise DeviceError(
                f"{self.name}: SpinNic needs the {SPIN_FEATURE!r} feature "
                "(use SpinNicSpec)")
        self._spin: Optional[SpinHandlers] = None
        self.budget_ns = DEFAULT_BUDGET_NS
        # Per-verdict accounting.
        self.spin_handled = 0          # packets that entered the chain
        self.spin_dropped = 0          # filtered in-network
        self.spin_to_host = 0          # escalated by a handler verdict
        self.spin_consumed = 0         # fully absorbed on the NIC
        self.budget_overruns = 0       # punted by the budget check
        self.handler_ns_total = 0      # cycles actually spent in handlers

    # -- handler management ------------------------------------------------------

    def install_handlers(self, handlers: SpinHandlers,
                         budget_ns: int = DEFAULT_BUDGET_NS) -> None:
        """Install a packet program with a per-packet cycle budget."""
        if budget_ns <= 0:
            raise DeviceError(f"{self.name}: budget must be positive")
        self._spin = handlers
        self.budget_ns = budget_ns
        self.install_rx_offload(self._spin_chain)

    def remove_handlers(self) -> None:
        """Restore the pure host receive path."""
        self._spin = None
        self.remove_rx_offload()

    def fence(self) -> None:
        """Recovery reset: handlers die with the firmware."""
        super().fence()
        self._spin = None

    @property
    def handlers_installed(self) -> bool:
        """True while a packet program is active."""
        return self._spin is not None

    # -- the packet program ------------------------------------------------------

    def _spin_chain(self, packet) -> Generator[Event, None, object]:
        """The rx-offload body: run the chain within the budget.

        Returns ``False`` (→ host path) on budget overrun or a TO_HOST
        verdict; anything else means the packet terminated on the NIC.
        """
        spin = self._spin
        if spin is None:
            return False
        size = getattr(packet, "size_bytes", 0)
        if spin.projected_ns(size) > self.budget_ns:
            # The budget check runs *before* the chain (admission, not
            # preemption): NIC firmware cannot roll back a half-run
            # handler, so oversized packets never enter it.
            self.budget_overruns += 1
            return False
        self.spin_handled += 1
        verdict = None
        spent = 0
        if spin.header is not None:
            yield from self.run_on_device(spin.header_ns,
                                          context="spin-header")
            spent += spin.header_ns
            verdict = spin.header(packet)
        if verdict is None and spin.payload is not None:
            cost = round(size * spin.payload_ns_per_byte)
            yield from self.run_on_device(max(1, cost),
                                          context="spin-payload")
            spent += cost
            verdict = spin.payload(packet)
        if spin.completion is not None:
            yield from self.run_on_device(spin.completion_ns,
                                          context="spin-completion")
            spent += spin.completion_ns
            spin.completion(packet)
        self.handler_ns_total += spent
        if verdict == DROP:
            self.spin_dropped += 1
            return True
        if verdict == TO_HOST:
            self.spin_to_host += 1
            return False
        self.spin_consumed += 1
        return True
