"""Programmable disk controller ("Smart Disk").

The paper emulated a programmable disk controller with a second
programmable NIC exporting "a standard block device that interacts with
an NFS server to store the data" (Section 6.1) — the streamed video is
effectively stored on a remote disk.  We reproduce that arrangement: the
:class:`SmartDisk` is a storage-class programmable device whose blocks
can be backed either

* **locally** (a latency-modelled block store — the common case for unit
  tests and for using the library outside the TiVoPC scenario), or
* **remotely** via an attached backing object with ``read_block`` /
  ``write_block`` generator methods (the NFS client offcode installs
  itself here in the TiVoPC build).
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro import units
from repro.errors import DeviceError
from repro.hw.bus import Bus
from repro.hw.device import DeviceClass, DeviceSpec, ProgrammableDevice
from repro.sim.engine import Event, Simulator

__all__ = ["DiskSpec", "SmartDisk", "BLOCK_SIZE"]

BLOCK_SIZE = 4096


def DiskSpec(name: str = "disk0", vendor: str = "generic-storage",
             local_memory_bytes: int = 16 * 1024 * 1024) -> DeviceSpec:
    """DeviceSpec factory for a programmable disk controller."""
    return DeviceSpec(
        name=name,
        device_class=DeviceClass.STORAGE,
        local_memory_bytes=local_memory_bytes,
        vendor=vendor,
        bus_type="pci",
        features=frozenset({"block-device", "dma-master", "scatter-gather"}),
    )


class SmartDisk(ProgrammableDevice):
    """A storage controller with an embedded CPU hosting Offcodes."""

    # Local-backing latency model: controller overhead plus media access.
    CONTROLLER_NS = 4_000
    MEDIA_ACCESS_NS = 80_000          # ~0.08 ms: cached/sequential access
    MEDIA_BW_BPS = 60 * 8 * 1_000_000  # 60 MB/s sustained, 2004-era disk

    def __init__(self, sim: Simulator, bus: Bus,
                 spec: Optional[DeviceSpec] = None) -> None:
        super().__init__(sim, spec or DiskSpec(), bus)
        self._blocks: Dict[int, int] = {}   # lba -> stored byte count
        self._backing: Optional[object] = None
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # -- backing selection -------------------------------------------------------

    def attach_backing(self, backing: object) -> None:
        """Install a remote backing store (e.g. the NFS client offcode).

        ``backing`` must expose generator methods ``read_block(lba, size)``
        and ``write_block(lba, size)``.
        """
        for method in ("read_block", "write_block"):
            if not callable(getattr(backing, method, None)):
                raise DeviceError(
                    f"backing object lacks required method {method!r}")
        self._backing = backing

    @property
    def remote_backed(self) -> bool:
        """True when an NFS-style backing store is attached."""
        return self._backing is not None

    # -- block interface -----------------------------------------------------------

    def write_block(self, lba: int, size: int = BLOCK_SIZE
                    ) -> Generator[Event, None, None]:
        """Store ``size`` bytes at logical block ``lba``."""
        self._validate(lba, size)
        yield from self.run_on_device(self.CONTROLLER_NS, context="disk-ctl")
        if self._backing is not None:
            yield from self._backing.write_block(lba, size)
        else:
            yield self.sim.timeout(self._media_time(size))
        self._blocks[lba] = size
        self.writes += 1
        self.bytes_written += size

    def read_block(self, lba: int, size: int = BLOCK_SIZE
                   ) -> Generator[Event, None, int]:
        """Fetch ``size`` bytes at logical block ``lba``; returns bytes read."""
        self._validate(lba, size)
        yield from self.run_on_device(self.CONTROLLER_NS, context="disk-ctl")
        if self._backing is not None:
            yield from self._backing.read_block(lba, size)
        else:
            yield self.sim.timeout(self._media_time(size))
        stored = self._blocks.get(lba, 0)
        self.reads += 1
        self.bytes_read += stored
        return stored

    def has_block(self, lba: int) -> bool:
        """True if ``lba`` was ever written."""
        return lba in self._blocks

    @property
    def blocks_stored(self) -> int:
        """Number of distinct written blocks."""
        return len(self._blocks)

    # -- internals -------------------------------------------------------------------

    def _validate(self, lba: int, size: int) -> None:
        if lba < 0:
            raise DeviceError(f"negative LBA: {lba}")
        if size <= 0:
            raise DeviceError(f"block I/O size must be positive: {size}")

    def _media_time(self, size: int) -> int:
        return self.MEDIA_ACCESS_NS + units.transfer_time_ns(
            size, self.MEDIA_BW_BPS)
