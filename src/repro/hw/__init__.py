"""Simulated hardware substrate.

Substitutes for the paper's physical testbed (see DESIGN.md §2):
CPUs with utilization accounting, a set-associative L2 cache, PCI/PCIe
buses with DMA and peer-to-peer transfers, programmable devices (NIC,
GPU, smart disk) and a power model.
"""

from repro.hw.bus import HOST_MEMORY, Bus, BusSpec
from repro.hw.cache import Cache, CacheConfig, CacheStats, SampledCacheMonitor
from repro.hw.cpu import Cpu, CpuSampler, CpuSpec
from repro.hw.device import (
    DeviceClass,
    DeviceHealth,
    DeviceMemoryAllocator,
    DeviceSpec,
    MemoryRegion,
    ProgrammableDevice,
    XSCALE_CPU,
)
from repro.hw.disk import BLOCK_SIZE, DiskSpec, SmartDisk
from repro.hw.gpu import Gpu, GpuSpec
from repro.hw.machine import Machine, MachineSpec
from repro.hw.nic import Nic, NicSpec
from repro.hw.power import ComponentEnergy, PowerModel
from repro.hw.spin import (DROP, SPIN_FEATURE, TO_HOST, SpinHandlers,
                           SpinNic, SpinNicSpec)

__all__ = [
    "BLOCK_SIZE",
    "Bus",
    "BusSpec",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "ComponentEnergy",
    "DROP",
    "Cpu",
    "CpuSampler",
    "CpuSpec",
    "DeviceClass",
    "DeviceHealth",
    "DeviceMemoryAllocator",
    "DeviceSpec",
    "DiskSpec",
    "Gpu",
    "GpuSpec",
    "HOST_MEMORY",
    "Machine",
    "MachineSpec",
    "MemoryRegion",
    "Nic",
    "NicSpec",
    "PowerModel",
    "ProgrammableDevice",
    "SPIN_FEATURE",
    "SampledCacheMonitor",
    "SmartDisk",
    "SpinHandlers",
    "SpinNic",
    "SpinNicSpec",
    "TO_HOST",
    "XSCALE_CPU",
]
