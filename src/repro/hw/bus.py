"""I/O interconnect model (PCI / PCIe) with DMA transfers.

Bus crossings are the paper's central cost currency: offloading wins by
"eliminating expensive memory bus crossings" and the TiVoPC layout is
chosen to minimise them (Section 6.3).  Two properties matter:

* **Bandwidth / arbitration** — each transfer holds the bus for an
  arbitration setup time plus the serialization delay of its payload.
* **Peer-to-peer capability** — the paper notes that with PCIe a packet
  can move NIC -> GPU *and* NIC -> disk "in a single bus transaction"
  without touching host memory.  A :class:`Bus` with
  ``peer_to_peer=False`` (classic PCI) forces device-to-device traffic
  through host memory, doubling the crossings.

All transfers are recorded per (source, destination) endpoint pair, so
experiments can count crossings and measure the bus bandwidth actually
consumed (the *Maximize Bus Usage* objective of Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro import units
from repro.errors import BusError
from repro.sim.engine import Event, Simulator
from repro.sim.resources import Resource
from repro.sim.trace import emit as trace_emit

__all__ = ["BusSpec", "Bus", "HOST_MEMORY", "TransferRecord"]

# Canonical endpoint name for host DRAM.
HOST_MEMORY = "host-memory"


@dataclass(frozen=True)
class BusSpec:
    """Static bus parameters.

    The default models 4x PCIe-generation interconnect headroom of the
    paper's era server boards; construct with ``pci_legacy()`` for the
    classic shared 133 MB/s PCI bus.
    """

    name: str = "pcie"
    bandwidth_bps: float = 8.0e9       # ~PCIe x4 effective
    arbitration_ns: int = 200
    peer_to_peer: bool = True

    @staticmethod
    def pci_legacy() -> "BusSpec":
        """Classic 32-bit/33 MHz PCI: ~1.06 Gbps shared, no peer-to-peer."""
        return BusSpec(name="pci", bandwidth_bps=1.064e9,
                       arbitration_ns=500, peer_to_peer=False)


@dataclass
class TransferRecord:
    """One completed bus transaction."""

    time_ns: int
    src: str
    dst: str
    size_bytes: int
    duration_ns: int
    multicast: bool = False


class Bus:
    """A shared interconnect segment between host memory and devices."""

    def __init__(self, sim: Simulator, spec: Optional[BusSpec] = None) -> None:
        self.sim = sim
        self.spec = spec or BusSpec()
        self._arbiter = Resource(sim, capacity=1)
        self._endpoints: Dict[str, object] = {HOST_MEMORY: None}
        self.transfers: List[TransferRecord] = []
        self.bytes_moved = 0
        self.crossings: Dict[Tuple[str, str], int] = {}
        # Scatter-gather accounting: vectored transfers move several
        # logical messages in one transaction; these counters let the
        # batching benchmark report amortization directly.
        self.sg_transfers = 0
        self.sg_entries = 0
        self.record_log = False   # keep full TransferRecord list (tests/debug)
        # Fault injection: each pending transient corrupts one transaction,
        # which the link layer detects and replays (one extra serialization).
        self._pending_transients = 0
        self.transient_faults = 0
        # Telemetry track; Machine overrides with its own name so the
        # per-machine buses (all named "pcie") stay distinguishable.
        self.telemetry_track = f"bus:{self.spec.name}"

    # -- topology ------------------------------------------------------------

    def attach(self, name: str, endpoint: object = None) -> None:
        """Register an endpoint (a device, or a memory agent)."""
        if name in self._endpoints:
            raise BusError(f"endpoint {name!r} already attached to {self.spec.name}")
        self._endpoints[name] = endpoint

    def endpoint(self, name: str) -> object:
        """The object attached under ``name`` (BusError if unknown)."""
        try:
            return self._endpoints[name]
        except KeyError:
            raise BusError(f"unknown bus endpoint {name!r}") from None

    @property
    def endpoints(self) -> List[str]:
        """All attached endpoint names."""
        return list(self._endpoints)

    # -- fault injection ---------------------------------------------------------

    def inject_transients(self, count: int = 1) -> None:
        """Arm ``count`` transient errors against upcoming transactions.

        Models soft interconnect errors (parity hit, replay at the link
        layer): each armed transient makes one future transaction pay its
        serialization delay twice while still delivering the payload, so
        faults cost time — the quantity this simulation measures — rather
        than data.  Used by :class:`repro.faults.FaultInjector`.
        """
        if count < 0:
            raise BusError(f"transient count must be non-negative: {count}")
        self._pending_transients += count

    # -- transfers -------------------------------------------------------------

    def transfer_time_ns(self, size_bytes: int) -> int:
        """Pure serialization + arbitration delay for a payload."""
        return self.spec.arbitration_ns + units.transfer_time_ns(
            size_bytes, self.spec.bandwidth_bps)

    def transfer(self, src: str, dst: str, size_bytes: int
                 ) -> Generator[Event, None, int]:
        """Process generator: move ``size_bytes`` from ``src`` to ``dst``.

        Device-to-device transfers on a non-peer-to-peer bus are staged
        through host memory (two transactions).  Returns the total number
        of bus transactions performed.
        """
        self._check(src, dst, size_bytes)
        if (src != HOST_MEMORY and dst != HOST_MEMORY
                and not self.spec.peer_to_peer):
            yield from self._single_transfer(src, HOST_MEMORY, size_bytes)
            yield from self._single_transfer(HOST_MEMORY, dst, size_bytes)
            return 2
        yield from self._single_transfer(src, dst, size_bytes)
        return 1

    def transfer_scatter(self, src: str, dst: str, sizes: List[int]
                         ) -> Generator[Event, None, int]:
        """Move a scatter-gather list in a single bus transaction.

        The DMA engine chains the descriptors, so the bus is arbitrated
        once and the payloads serialize back to back — one transaction
        regardless of how many logical messages ride in it.  On a
        non-peer-to-peer bus a device-to-device list still stages
        through host memory (two transactions), like :meth:`transfer`.
        Returns the number of bus transactions performed.
        """
        if not sizes:
            raise BusError("scatter transfer requires at least one entry")
        total = sum(sizes)
        count = yield from self.transfer(src, dst, total)
        self.sg_transfers += count
        self.sg_entries += len(sizes)
        return count

    def multicast_transfer(self, src: str, dsts: List[str], size_bytes: int
                           ) -> Generator[Event, None, int]:
        """Move one payload to several destinations.

        On a peer-to-peer bus this is a *single* transaction (the paper's
        PCIe footnote: a packet can reach both the GPU and the disk
        controller at once); otherwise one transaction per destination.
        """
        if not dsts:
            raise BusError("multicast requires at least one destination")
        for dst in dsts:
            self._check(src, dst, size_bytes)
        if self.spec.peer_to_peer:
            yield from self._single_transfer(src, dsts[0], size_bytes,
                                             multicast=True)
            for dst in dsts:
                self._count(src, dst)
            return 1
        count = 0
        for dst in dsts:
            count += yield from self.transfer(src, dst, size_bytes)
        return count

    # -- internals --------------------------------------------------------------

    def _check(self, src: str, dst: str, size_bytes: int) -> None:
        if size_bytes <= 0:
            raise BusError(f"transfer size must be positive: {size_bytes}")
        if src not in self._endpoints:
            raise BusError(f"unknown source endpoint {src!r}")
        if dst not in self._endpoints:
            raise BusError(f"unknown destination endpoint {dst!r}")
        if src == dst:
            raise BusError(f"transfer from {src!r} to itself")

    def _single_transfer(self, src: str, dst: str, size_bytes: int,
                         multicast: bool = False
                         ) -> Generator[Event, None, None]:
        tel = self.sim.telemetry
        span = None
        if tel is not None:
            # Opened before arbitration so the span includes the wait
            # for the bus, not just the serialization delay.
            span = tel.begin("bus.transfer", "bus", self.telemetry_track,
                             parent=tel.current_ctx(), src=src, dst=dst,
                             bytes=size_bytes)
        yield self._arbiter.request()
        start = self.sim.now
        try:
            # Bare-int yield: the engine's allocation-free fused sleep.
            yield self.transfer_time_ns(size_bytes)
            if self._pending_transients > 0:
                # Link-layer replay: the corrupted transaction is re-sent
                # while the bus is still held, doubling its occupancy.
                self._pending_transients -= 1
                self.transient_faults += 1
                trace_emit(self.sim, "fault",
                           f"bus {self.spec.name}: transient error, replaying "
                           f"{src}->{dst}", bus=self.spec.name, src=src,
                           dst=dst, size_bytes=size_bytes)
                yield self.transfer_time_ns(size_bytes)
        finally:
            self._arbiter.release()
            if span is not None:
                tel.end(span)
        self.bytes_moved += size_bytes
        if not multicast:
            self._count(src, dst)
        if self.record_log:
            self.transfers.append(TransferRecord(
                time_ns=start, src=src, dst=dst, size_bytes=size_bytes,
                duration_ns=self.sim.now - start, multicast=multicast))

    def _count(self, src: str, dst: str) -> None:
        key = (src, dst)
        self.crossings[key] = self.crossings.get(key, 0) + 1

    # -- inspection --------------------------------------------------------------

    def total_crossings(self) -> int:
        """Total recorded transactions across all pairs."""
        return sum(self.crossings.values())

    def host_memory_crossings(self) -> int:
        """Transactions that touched host memory (the expensive ones)."""
        return sum(n for (s, d), n in self.crossings.items()
                   if HOST_MEMORY in (s, d))

    def utilization(self, since: int = 0) -> float:
        """Fraction of wall time the bus was occupied since ``since``."""
        return self._arbiter.utilization(since)
