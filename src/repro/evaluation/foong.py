"""The Figure 1 model: GHz/Gbps ratio for TCP transmit and receive.

Figure 1 reprints measurements from Foong et al., "TCP performance
re-visited" (ISPASS 2003): the CPU cost of saturating a link, expressed
as ``GHz/Gbps = (%cpu x processor speed) / throughput``, for a sweep of
packet sizes in the transmit and receive directions.  The paper uses it
to argue that "host CPUs can spend all of their cycles just processing
network traffic".

The quantity reduces to *CPU cycles per bit transferred*:

    ratio(S) = (c_pp + c_pb * S) / (8 * S)

where ``c_pp`` is the per-packet cycle cost (interrupt, TCP/IP protocol
work, socket bookkeeping) and ``c_pb`` the per-byte cost (copies and
checksums).  Receive is dearer than transmit on both axes: rx takes an
extra copy (NIC buffer -> socket buffer -> user) and its interrupts
cannot be batched as well as tx completions.  Constants below are fit to
the shape of Foong et al.'s curves on a 2.4 GHz P4 testbed: ratios of
several GHz/Gbps at 64-byte packets, crossing ~1 around standard MTU,
flattening toward the per-byte floor at 64 kB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ReproError

__all__ = ["TcpCostModel", "STANDARD_SIZES", "fig1_series"]

STANDARD_SIZES = (64, 128, 256, 512, 1024, 1460, 2048, 4096,
                  8192, 16384, 32768, 65536)


@dataclass(frozen=True)
class TcpCostModel:
    """Per-packet / per-byte TCP processing costs, in CPU cycles."""

    tx_per_packet_cycles: float = 3_800.0
    tx_per_byte_cycles: float = 1.1
    rx_per_packet_cycles: float = 5_800.0
    rx_per_byte_cycles: float = 2.4

    def __post_init__(self) -> None:
        for value in (self.tx_per_packet_cycles, self.tx_per_byte_cycles,
                      self.rx_per_packet_cycles, self.rx_per_byte_cycles):
            if value <= 0:
                raise ReproError("TCP cost constants must be positive")

    def cycles_per_packet(self, size_bytes: int, direction: str) -> float:
        """CPU cycles to process one packet of ``size_bytes``."""
        if size_bytes <= 0:
            raise ReproError(f"packet size must be positive: {size_bytes}")
        if direction == "tx":
            return (self.tx_per_packet_cycles
                    + self.tx_per_byte_cycles * size_bytes)
        if direction == "rx":
            return (self.rx_per_packet_cycles
                    + self.rx_per_byte_cycles * size_bytes)
        raise ReproError(f"direction must be 'tx' or 'rx': {direction!r}")

    def ghz_per_gbps(self, size_bytes: int, direction: str) -> float:
        """Cycles per bit == GHz of CPU burned per Gbps of traffic."""
        return (self.cycles_per_packet(size_bytes, direction)
                / (8.0 * size_bytes))

    def cpu_utilization(self, size_bytes: int, direction: str,
                        throughput_gbps: float,
                        cpu_ghz: float = 2.4) -> float:
        """Fraction of a ``cpu_ghz`` processor consumed at a target
        throughput (may exceed 1.0: the link is then CPU-bound)."""
        if throughput_gbps <= 0 or cpu_ghz <= 0:
            raise ReproError("throughput and CPU speed must be positive")
        return (self.ghz_per_gbps(size_bytes, direction)
                * throughput_gbps / cpu_ghz)

    def saturation_throughput_gbps(self, size_bytes: int, direction: str,
                                   cpu_ghz: float = 2.4) -> float:
        """Throughput at which the CPU hits 100 % — the paper's point
        that packet processing can eat every cycle."""
        return cpu_ghz / self.ghz_per_gbps(size_bytes, direction)


def fig1_series(model: TcpCostModel = TcpCostModel(),
                sizes: Tuple[int, ...] = STANDARD_SIZES
                ) -> List[Tuple[int, float, float]]:
    """The two Figure-1 curves: (size, tx ratio, rx ratio) rows."""
    return [(size,
             model.ghz_per_gbps(size, "tx"),
             model.ghz_per_gbps(size, "rx"))
            for size in sizes]
