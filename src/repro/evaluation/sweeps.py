"""Extension experiments: parameter sweeps beyond the paper's tables.

The paper's conclusion gestures at generality — "our current work
suggests further opportunities in the area of network offload" — and
its evaluation pins a single operating point (1 kB chunks every 5 ms).
These sweeps vary the operating point and show *where the offload
advantage comes from and how it scales*:

* :func:`run_rate_sweep` — stream rate sweep: the host servers' jitter
  and CPU degrade as the inter-packet interval shrinks (less slack for
  tick quantization and app stalls) while the firmware-paced server
  stays flat until the wire, not the host, is the limit.
* :func:`run_chunk_size_sweep` — payload size sweep at fixed packet
  rate: the simple server's copy costs grow with chunk size; the
  offloaded server's host cost stays identically zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro import units
from repro.media.mpeg import StreamConfig
from repro.tivopc.client import MeasurementClient
from repro.tivopc.metrics import SummaryStats
from repro.tivopc.server import (
    OffloadedServer,
    SendfileServer,
    SimpleServer,
)
from repro.tivopc.testbed import Testbed, TestbedConfig

__all__ = ["SweepPoint", "run_rate_sweep", "run_chunk_size_sweep"]

_SERVER_CLASSES = {"simple": SimpleServer, "sendfile": SendfileServer,
                   "offloaded": OffloadedServer}


@dataclass
class SweepPoint:
    """One (scenario, parameter) measurement."""

    scenario: str
    interval_ms: float
    chunk_bytes: int
    jitter: SummaryStats
    cpu_utilization: float
    packets: int

    @property
    def relative_jitter(self) -> float:
        """Std-dev as a fraction of the nominal interval."""
        return self.jitter.stdev / self.interval_ms if self.interval_ms \
            else 0.0

    @property
    def achieved_rate_fraction(self) -> float:
        """Mean interval vs nominal: 1.0 = the server kept pace."""
        return self.interval_ms / self.jitter.average if \
            self.jitter.average else 0.0


def _measure(scenario: str, stream: StreamConfig, seconds: float,
             seed: int) -> SweepPoint:
    testbed = Testbed(TestbedConfig(seed=seed, stream=stream))
    testbed.start()
    client = MeasurementClient(testbed)
    client.start()
    _SERVER_CLASSES[scenario](testbed).start()
    testbed.run(seconds)
    return SweepPoint(
        scenario=scenario,
        interval_ms=units.ns_to_ms(stream.interval_ns),
        chunk_bytes=stream.chunk_bytes,
        jitter=client.jitter.stats(),
        cpu_utilization=testbed.server.machine.cpu.utilization(),
        packets=client.jitter.packet_count)


def _run_sweep(tasks, scenarios, workers) -> Dict[str, List[SweepPoint]]:
    """Dispatch ``tasks`` (sequentially or across workers) and regroup.

    The task list is built in the same order the old sequential loops
    visited it and ``run_tasks`` preserves that order, so the grouped
    results are identical whatever the worker count.
    """
    from repro.evaluation.parallel import run_tasks
    points = run_tasks(tasks, workers=workers)
    results: Dict[str, List[SweepPoint]] = {s: [] for s in scenarios}
    for (scenario, _stream, _seconds, _seed), point in zip(tasks, points):
        results[scenario].append(point)
    return results


def run_rate_sweep(intervals_ms=(10.0, 5.0, 2.5, 1.25),
                   scenarios=("simple", "offloaded"),
                   seconds: float = 10.0, seed: int = 0,
                   workers: int = 1
                   ) -> Dict[str, List[SweepPoint]]:
    """Jitter/CPU vs stream rate, per scenario.

    ``workers`` > 1 (or ``None`` for one per CPU) fans the points out
    over a process pool with bit-identical results.
    """
    tasks = [
        (scenario, StreamConfig(interval_ns=units.ms_to_ns(interval)),
         seconds, seed)
        for interval in intervals_ms
        for scenario in scenarios
    ]
    return _run_sweep(tasks, scenarios, workers)


def run_chunk_size_sweep(chunk_sizes=(512, 1024, 4096, 16384),
                         scenarios=("simple", "offloaded"),
                         interval_ms: float = 5.0,
                         seconds: float = 10.0, seed: int = 0,
                         workers: int = 1
                         ) -> Dict[str, List[SweepPoint]]:
    """Jitter/CPU vs payload size at a fixed packet rate.

    ``workers`` behaves as in :func:`run_rate_sweep`.
    """
    tasks = [
        (scenario,
         StreamConfig(chunk_bytes=chunk,
                      interval_ns=units.ms_to_ns(interval_ms)),
         seconds, seed)
        for chunk in chunk_sizes
        for scenario in scenarios
    ]
    return _run_sweep(tasks, scenarios, workers)


def render_sweep(title: str, results: Dict[str, List[SweepPoint]],
                 x_label: str = "interval ms") -> str:
    """Text rendering for sweep results."""
    from repro.evaluation.reporting import format_table
    rows = []
    for scenario, points in results.items():
        for point in points:
            x = (f"{point.interval_ms:g}" if x_label.startswith("interval")
                 else str(point.chunk_bytes))
            rows.append([
                scenario, x,
                f"{point.jitter.average:.3f}",
                f"{point.jitter.stdev:.4f}",
                f"{point.relative_jitter:.1%}",
                f"{point.cpu_utilization:.1%}",
            ])
    return format_table(
        title,
        ["scenario", x_label, "mean ms", "stddev ms", "rel jitter",
         "server cpu"],
        rows)


__all__.append("render_sweep")
