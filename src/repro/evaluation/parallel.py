"""Parallel experiment runner for parameter sweeps.

Every sweep point builds its own :class:`~repro.tivopc.testbed.Testbed`
from an explicit seed, so points share **no** mutable state and their
results depend only on ``(scenario, stream, seconds, seed)``.  That
makes the sweep embarrassingly parallel *and* lets us promise something
stronger than speedup: the parallel runner is **bit-identical** to the
sequential one.  Determinism comes from three properties:

1. each worker runs the exact same :func:`repro.evaluation.sweeps._measure`
   code path as the sequential loop, with the same per-point seed;
2. ``Pool.map`` preserves input order, so results land in the same
   positions regardless of which worker finished first;
3. the task list is built before dispatch, in the same order the
   sequential loop would visit it.

``tests/test_evaluation_parallel.py`` asserts the equality point for
point.  Workers are ``fork``-context processes (the runner targets the
POSIX CI hosts); pass ``workers=1`` (the default everywhere) to stay in
process.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.evaluation import sweeps as _sweeps
from repro.media.mpeg import StreamConfig

__all__ = ["SweepTask", "default_workers", "fork_context",
           "map_unordered", "run_tasks"]

# One unit of work: (scenario, stream, seconds, seed).
SweepTask = Tuple[str, StreamConfig, float, int]


def default_workers() -> int:
    """Worker count for ``workers=None``: one per *available* CPU.

    "Available" means the process's CPU affinity mask, not the machine's
    CPU count — in a cgroup-pinned CI container ``os.cpu_count()``
    reports the host's cores while the runner may hold a single one, and
    oversubscribing fork workers there is strictly slower.  Platforms
    without ``sched_getaffinity`` (macOS) fall back to the CPU count.
    """
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:           # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    return max(1, cpus)


def fork_context():
    """The ``fork`` multiprocessing context, or a clear error without it.

    Every parallel runner here relies on fork inheritance (workers reuse
    the parent's imported modules; closures over rich configs never
    pickle).  Requesting the context lazily inside the pool would crash
    with an opaque ``ValueError`` mid-dispatch on spawn-only platforms —
    fail up front instead, naming the fix.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError as exc:
        raise ReproError(
            "this platform has no 'fork' start method (Windows, or a "
            "spawn-only build); run with workers=1 instead"
        ) from exc


def _run_task(task: SweepTask):
    """Module-level worker body (must be picklable for the pool)."""
    scenario, stream, seconds, seed = task
    return _sweeps._measure(scenario, stream, seconds, seed)


def run_tasks(tasks: Sequence[SweepTask],
              workers: Optional[int] = 1) -> List:
    """Measure every task; return :class:`SweepPoint` results in order.

    ``workers=1`` (or a single task) runs sequentially in-process;
    ``workers=None`` uses one process per CPU; any larger value sizes
    the pool explicitly.  Results are returned in task order and are
    identical to the sequential runner's whatever the worker count.
    """
    tasks = list(tasks)
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    if workers == 1 or len(tasks) <= 1:
        return [_run_task(task) for task in tasks]
    # fork context: inherits the loaded modules, so workers skip
    # re-importing the package and StreamConfig pickles stay tiny.
    with fork_context().Pool(processes=min(workers, len(tasks))) as pool:
        return pool.map(_run_task, tasks)


class _ChunkRunner:
    """Apply ``fn`` to a contiguous chunk of items inside a worker.

    Module-level class (not a closure) so the supervised path's worker
    body stays importable; fork inheritance hands it to workers without
    pickling either way.
    """

    def __init__(self, fn: Callable) -> None:
        self.fn = fn

    def __call__(self, chunk: Sequence) -> List:
        return [self.fn(item) for item in chunk]


def map_unordered(fn: Callable, items: Sequence, workers: int,
                  chunksize: int = 1, supervised: bool = True,
                  policy=None) -> Iterable:
    """Map ``fn`` over ``items`` on a crash-safe worker pool.

    The fleet runner's dispatch primitive.  By default dispatch runs
    through :class:`~repro.evaluation.supervised.SupervisedPool`: a
    worker OOM-killed or wedged mid-item no longer hangs the whole map —
    the chunk is retried per ``policy`` (a
    :class:`~repro.evaluation.supervised.SupervisionPolicy`; default:
    two retries with capped backoff, hedged stragglers) and a chunk that
    exhausts its retries raises :class:`ReproError` naming it.  Note the
    supervised path is **not** streaming: it buffers the entire run and
    only starts yielding (in chunk-completion order) once every chunk
    has settled, so a quarantine raises before any result is produced.
    ``supervised=False`` keeps the bare ``Pool.imap_unordered`` path,
    which does yield each result as its worker finishes and re-raises
    the worker's own exception — the baseline the supervision-overhead
    benchmark compares against.

    ``chunksize`` batches items so each worker pickup carries several;
    retry/timeout granularity under supervision is the chunk.  Callers
    that need deterministic output must carry an index in the result
    and reorder — completion order is *not* stable.

    ``workers=1`` runs in-process (no fork, no multiprocessing import
    path at all), which is what the determinism tests diff against.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    if chunksize < 1:
        raise ValueError(f"chunksize must be >= 1: {chunksize}")
    items = list(items)
    if workers == 1 or len(items) <= 1:
        for item in items:
            yield fn(item)
        return
    if not supervised:
        with fork_context().Pool(
                processes=min(workers, len(items))) as pool:
            for result in pool.imap_unordered(fn, items,
                                              chunksize=chunksize):
                yield result
        return
    from repro.evaluation.supervised import SupervisedPool
    chunks = [items[i:i + chunksize]
              for i in range(0, len(items), chunksize)]
    pool = SupervisedPool(_ChunkRunner(fn), workers=min(workers,
                                                        len(chunks)),
                          policy=policy)
    results = pool.run(chunks)
    if pool.failures:
        raise ReproError(
            "map_unordered: chunk(s) quarantined after retry "
            "exhaustion: " + "; ".join(
                failure.summary()
                for _, failure in sorted(pool.failures.items())))
    for chunk_id in pool.completion_order:
        for result in results[chunk_id]:
            yield result
