"""Parallel experiment runner for parameter sweeps.

Every sweep point builds its own :class:`~repro.tivopc.testbed.Testbed`
from an explicit seed, so points share **no** mutable state and their
results depend only on ``(scenario, stream, seconds, seed)``.  That
makes the sweep embarrassingly parallel *and* lets us promise something
stronger than speedup: the parallel runner is **bit-identical** to the
sequential one.  Determinism comes from three properties:

1. each worker runs the exact same :func:`repro.evaluation.sweeps._measure`
   code path as the sequential loop, with the same per-point seed;
2. ``Pool.map`` preserves input order, so results land in the same
   positions regardless of which worker finished first;
3. the task list is built before dispatch, in the same order the
   sequential loop would visit it.

``tests/test_evaluation_parallel.py`` asserts the equality point for
point.  Workers are ``fork``-context processes (the runner targets the
POSIX CI hosts); pass ``workers=1`` (the default everywhere) to stay in
process.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from repro.evaluation import sweeps as _sweeps
from repro.media.mpeg import StreamConfig

__all__ = ["SweepTask", "default_workers", "run_tasks"]

# One unit of work: (scenario, stream, seconds, seed).
SweepTask = Tuple[str, StreamConfig, float, int]


def default_workers() -> int:
    """Worker count for ``workers=None``: one per available CPU."""
    return max(1, os.cpu_count() or 1)


def _run_task(task: SweepTask):
    """Module-level worker body (must be picklable for the pool)."""
    scenario, stream, seconds, seed = task
    return _sweeps._measure(scenario, stream, seconds, seed)


def run_tasks(tasks: Sequence[SweepTask],
              workers: Optional[int] = 1) -> List:
    """Measure every task; return :class:`SweepPoint` results in order.

    ``workers=1`` (or a single task) runs sequentially in-process;
    ``workers=None`` uses one process per CPU; any larger value sizes
    the pool explicitly.  Results are returned in task order and are
    identical to the sequential runner's whatever the worker count.
    """
    tasks = list(tasks)
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    if workers == 1 or len(tasks) <= 1:
        return [_run_task(task) for task in tasks]
    # fork context: inherits the loaded modules, so workers skip
    # re-importing the package and StreamConfig pickles stay tiny.
    from multiprocessing import get_context
    with get_context("fork").Pool(processes=min(workers, len(tasks))) as pool:
        return pool.map(_run_task, tasks)
