"""Command-line runner for the paper's experiments.

Usage::

    python -m repro.evaluation table2 [--seconds 30] [--seed 0]
    python -m repro.evaluation all --seconds 25

Artifacts: ``fig1``, ``fig9``, ``fig10``, ``table2``, ``table3``,
``table4``, ``ilp``, ``power``, ``profile``, ``sweeps``, or ``all``.
Output is the same paper-vs-measured rendering the benchmarks produce;
``profile`` prints the simulator's hot-loop attribution and ``--workers``
fans sweep points out over a process pool.

The ``fleet`` artifact is an *operation*, not just a table: it exits
non-zero (3) when the merged report fails conservation or is degraded
(shards missing after retry exhaustion) unless ``--allow-degraded`` is
passed, resumes from a previous run's artifacts via ``--resume DIR``,
and takes deterministic host-fault injection (``--chaos-kill`` /
``--chaos-stall`` / ``--chaos-slow``) for supervision drills.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

from repro.evaluation.experiments import (
    run_all_client_scenarios,
    run_all_server_scenarios,
    run_fig1,
    run_ilp_vs_greedy,
    run_power_comparison,
)
from repro.evaluation.reporting import (
    render_client_l2,
    render_fig1,
    render_fig9,
    render_fig10,
    render_ilp_ablation,
    render_power_ablation,
    render_table2,
    render_table3,
    render_table4,
)

__all__ = ["main", "ARTIFACTS"]

_server_cache: Dict = {}
_client_cache: Dict = {}


def _server_results(seconds: float, seed: int):
    key = (seconds, seed)
    if key not in _server_cache:
        _server_cache[key] = run_all_server_scenarios(seconds=seconds,
                                                      seed=seed)
    return _server_cache[key]


def _client_results(seconds: float, seed: int):
    key = (seconds, seed)
    if key not in _client_cache:
        _client_cache[key] = run_all_client_scenarios(seconds=seconds,
                                                      seed=seed)
    return _client_cache[key]


def _artifact_fig1(seconds: float, seed: int,
                   workers: int = 1) -> str:
    return render_fig1(run_fig1())


def _artifact_fig9(seconds: float, seed: int,
                workers: int = 1) -> str:
    return render_fig9(_server_results(seconds, seed))


def _artifact_fig10(seconds: float, seed: int,
                 workers: int = 1) -> str:
    return render_fig10(_server_results(seconds, seed))


def _artifact_table2(seconds: float, seed: int,
                  workers: int = 1) -> str:
    return render_table2(_server_results(seconds, seed))


def _artifact_table3(seconds: float, seed: int,
                  workers: int = 1) -> str:
    return render_table3(_server_results(seconds, seed))


def _artifact_table4(seconds: float, seed: int,
                  workers: int = 1) -> str:
    results = _client_results(seconds, seed)
    return render_table4(results) + "\n\n" + render_client_l2(results)


def _artifact_ilp(seconds: float, seed: int,
                workers: int = 1) -> str:
    return render_ilp_ablation(run_ilp_vs_greedy(seed=seed or 7))


def _artifact_power(seconds: float, seed: int,
                 workers: int = 1) -> str:
    return render_power_ablation(
        run_power_comparison(seconds=min(seconds, 20.0), seed=seed))


def _artifact_sweeps(seconds: float, seed: int,
                     workers: int = 1) -> str:
    from repro.evaluation.sweeps import (
        render_sweep,
        run_chunk_size_sweep,
        run_rate_sweep,
    )
    per_point = min(seconds, 10.0)
    rate = render_sweep(
        "Extension: jitter/CPU vs stream rate",
        run_rate_sweep(seconds=per_point, seed=seed, workers=workers),
        "interval ms")
    chunk = render_sweep(
        "Extension: jitter/CPU vs chunk size at 5 ms",
        run_chunk_size_sweep(seconds=per_point, seed=seed, workers=workers),
        "chunk bytes")
    return rate + "\n\n" + chunk


class FleetRunError(ReproError):
    """A fleet run whose merged report must fail the CLI (conservation
    violation, or a degraded report without ``--allow-degraded``).  The
    rendered report travels along so the operator still sees exactly
    what completed before the non-zero exit."""

    def __init__(self, message: str, rendered: str) -> None:
        super().__init__(message)
        self.rendered = rendered


def _parse_chaos_picks(kills: Sequence[str], stalls: Sequence[str],
                       slows: Sequence[str], stall_s: float):
    """``SHARD[:ATTEMPT]`` / ``SHARD:ATTEMPT:SECONDS`` specs →
    :class:`~repro.faults.fleet.FleetChaos` (None when no picks)."""
    from repro.faults.fleet import FleetChaos

    def pick(spec: str, want_seconds: bool) -> Tuple:
        parts = spec.split(":")
        try:
            if want_seconds:
                if len(parts) == 2:
                    return int(parts[0]), int(parts[1]), stall_s
                shard, attempt, seconds = parts
                return int(shard), int(attempt), float(seconds)
            if len(parts) == 1:
                return int(parts[0]), 0
            shard, attempt = parts
            return int(shard), int(attempt)
        except ValueError as exc:
            raise ReproError(f"bad chaos pick {spec!r}: {exc}") from exc

    if not (kills or stalls or slows):
        return None
    return FleetChaos(
        kills=tuple(pick(spec, False) for spec in kills),
        stalls=tuple(pick(spec, True) for spec in stalls),
        slows=tuple(pick(spec, True) for spec in slows))


def _artifact_fleet(seconds: float, seed: int, workers: int = 1,
                    clients: int = 64, shards: int = 4,
                    fidelity: str = "chunk", loss_rate: float = 0.0,
                    artifacts_dir: Optional[str] = None,
                    resume_dir: Optional[str] = None,
                    max_retries: int = 2,
                    shard_timeout: Optional[float] = None,
                    hedge: bool = True,
                    allow_degraded: bool = False,
                    chaos=None) -> str:
    from repro.evaluation.fleet import FleetConfig, run_fleet
    from repro.evaluation.supervised import SupervisionPolicy
    from repro.evaluation.reporting import render_fleet_report
    from repro.tivopc.population import PopulationConfig

    report = run_fleet(FleetConfig(
        population=PopulationConfig(
            clients=clients, seconds=min(seconds, 5.0), fidelity=fidelity,
            loss_rate=loss_rate, fleet_seed=seed),
        shards=shards, workers=workers,
        supervision=SupervisionPolicy(max_retries=max_retries,
                                      shard_timeout_s=shard_timeout,
                                      hedge=hedge)),
        artifacts_dir=artifacts_dir, resume_dir=resume_dir, chaos=chaos)
    rendered = render_fleet_report(report)
    problems: List[str] = []
    if not report.ok:
        problems.append(f"{len(report.violations)} conservation/sum "
                        "violation(s)")
    if report.degraded and not allow_degraded:
        problems.append(f"degraded report: shards "
                        f"{report.missing_shards} missing (pass "
                        "--allow-degraded to accept a partial run)")
    if problems:
        raise FleetRunError("; ".join(problems), rendered)
    return rendered


def _artifact_profile(seconds: float, seed: int,
                      workers: int = 1) -> str:
    """Hot-loop attribution for a Simple-server TiVoPC run."""
    from repro.sim.profile import profiled
    from repro.tivopc.client import MeasurementClient
    from repro.tivopc.server import SimpleServer
    from repro.tivopc.testbed import Testbed, TestbedConfig

    testbed = Testbed(TestbedConfig(seed=seed))
    testbed.start()
    MeasurementClient(testbed).start()
    SimpleServer(testbed).start()
    with profiled(testbed.sim) as profiler:
        testbed.run(min(seconds, 5.0))
    return profiler.render()


ARTIFACTS: Dict[str, Callable[..., str]] = {
    "fig1": _artifact_fig1,
    "fig9": _artifact_fig9,
    "fig10": _artifact_fig10,
    "table2": _artifact_table2,
    "table3": _artifact_table3,
    "table4": _artifact_table4,
    "fleet": _artifact_fleet,
    "ilp": _artifact_ilp,
    "power": _artifact_power,
    "profile": _artifact_profile,
    "sweeps": _artifact_sweeps,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("artifact",
                        choices=sorted(ARTIFACTS) + ["all"],
                        help="which artifact to regenerate")
    parser.add_argument("--seconds", type=float, default=25.0,
                        help="simulated seconds per scenario "
                             "(default: 25; the paper ran 600)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root RNG seed (default: 0)")
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool size for sweep/fleet artifacts "
                             "(default: 1 = sequential; 0 = one per CPU)")
    parser.add_argument("--clients", type=int, default=64,
                        help="fleet: subscriber count (default: 64)")
    parser.add_argument("--shards", type=int, default=4,
                        help="fleet: shard count (default: 4)")
    parser.add_argument("--fidelity", choices=("chunk", "detailed"),
                        default="chunk",
                        help="fleet: model tier (default: chunk)")
    parser.add_argument("--loss-rate", type=float, default=0.0,
                        help="fleet: chunk-tier Bernoulli loss "
                             "(default: 0)")
    parser.add_argument("--artifacts", default=None, metavar="DIR",
                        help="fleet: write shard-*.json + fleet.json + "
                             "fleet.canonical.json here")
    parser.add_argument("--resume", default=None, metavar="DIR",
                        help="fleet: skip shards whose fingerprint-"
                             "validated shard-<id>.json already exists "
                             "in DIR")
    parser.add_argument("--max-retries", type=int, default=2,
                        help="fleet: extra dispatch attempts per shard "
                             "(default: 2)")
    parser.add_argument("--shard-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="fleet: wall-clock budget per shard "
                             "dispatch (default: none)")
    parser.add_argument("--no-hedge", action="store_true",
                        help="fleet: disable speculative straggler "
                             "duplicates")
    parser.add_argument("--allow-degraded", action="store_true",
                        help="fleet: exit 0 even when shards are "
                             "missing after retry exhaustion")
    parser.add_argument("--chaos-kill", action="append", default=[],
                        metavar="SHARD[:ATTEMPT]",
                        help="fleet: kill the worker picking up this "
                             "shard attempt (repeatable)")
    parser.add_argument("--chaos-stall", action="append", default=[],
                        metavar="SHARD:ATTEMPT[:SECONDS]",
                        help="fleet: stall that worker pick "
                             "(default 30s; repeatable)")
    parser.add_argument("--chaos-slow", action="append", default=[],
                        metavar="SHARD:ATTEMPT:SECONDS",
                        help="fleet: delay that worker pick by SECONDS "
                             "(repeatable)")
    args = parser.parse_args(argv)
    if (args.chaos_stall and args.shard_timeout is None
            and args.workers != 1):
        # Without a watchdog a multiprocess stall pick just sleeps and
        # the run succeeds slowly — the drill would exercise nothing
        # (at workers=1 the stall raises in-process instead, so the
        # retry path is hit without a timeout).
        parser.error(
            "--chaos-stall needs --shard-timeout when workers != 1: "
            "the stall models a wedged worker and only the wall-clock "
            "watchdog reaps it; pass a timeout below the stall duration")
    workers = None if args.workers == 0 else args.workers

    names = sorted(ARTIFACTS) if args.artifact == "all" else [args.artifact]
    for name in names:
        extra = {}
        if name == "fleet":
            extra = {"clients": args.clients, "shards": args.shards,
                     "fidelity": args.fidelity,
                     "loss_rate": args.loss_rate,
                     "artifacts_dir": args.artifacts,
                     "resume_dir": args.resume,
                     "max_retries": args.max_retries,
                     "shard_timeout": args.shard_timeout,
                     "hedge": not args.no_hedge,
                     "allow_degraded": args.allow_degraded,
                     "chaos": _parse_chaos_picks(
                         args.chaos_kill, args.chaos_stall,
                         args.chaos_slow, stall_s=30.0)}
        try:
            print(ARTIFACTS[name](args.seconds, args.seed,
                                  workers=workers, **extra))
        except FleetRunError as exc:
            print(exc.rendered)
            print(f"\nFLEET FAILURE: {exc}", file=sys.stderr)
            return 3
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
