"""Command-line runner for the paper's experiments.

Usage::

    python -m repro.evaluation table2 [--seconds 30] [--seed 0]
    python -m repro.evaluation all --seconds 25

Artifacts: ``fig1``, ``fig9``, ``fig10``, ``table2``, ``table3``,
``table4``, ``ilp``, ``power``, ``profile``, ``sweeps``, or ``all``.
Output is the same paper-vs-measured rendering the benchmarks produce;
``profile`` prints the simulator's hot-loop attribution and ``--workers``
fans sweep points out over a process pool.
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict, Optional, Sequence

from repro.evaluation.experiments import (
    run_all_client_scenarios,
    run_all_server_scenarios,
    run_fig1,
    run_ilp_vs_greedy,
    run_power_comparison,
)
from repro.evaluation.reporting import (
    render_client_l2,
    render_fig1,
    render_fig9,
    render_fig10,
    render_ilp_ablation,
    render_power_ablation,
    render_table2,
    render_table3,
    render_table4,
)

__all__ = ["main", "ARTIFACTS"]

_server_cache: Dict = {}
_client_cache: Dict = {}


def _server_results(seconds: float, seed: int):
    key = (seconds, seed)
    if key not in _server_cache:
        _server_cache[key] = run_all_server_scenarios(seconds=seconds,
                                                      seed=seed)
    return _server_cache[key]


def _client_results(seconds: float, seed: int):
    key = (seconds, seed)
    if key not in _client_cache:
        _client_cache[key] = run_all_client_scenarios(seconds=seconds,
                                                      seed=seed)
    return _client_cache[key]


def _artifact_fig1(seconds: float, seed: int,
                   workers: int = 1) -> str:
    return render_fig1(run_fig1())


def _artifact_fig9(seconds: float, seed: int,
                workers: int = 1) -> str:
    return render_fig9(_server_results(seconds, seed))


def _artifact_fig10(seconds: float, seed: int,
                 workers: int = 1) -> str:
    return render_fig10(_server_results(seconds, seed))


def _artifact_table2(seconds: float, seed: int,
                  workers: int = 1) -> str:
    return render_table2(_server_results(seconds, seed))


def _artifact_table3(seconds: float, seed: int,
                  workers: int = 1) -> str:
    return render_table3(_server_results(seconds, seed))


def _artifact_table4(seconds: float, seed: int,
                  workers: int = 1) -> str:
    results = _client_results(seconds, seed)
    return render_table4(results) + "\n\n" + render_client_l2(results)


def _artifact_ilp(seconds: float, seed: int,
                workers: int = 1) -> str:
    return render_ilp_ablation(run_ilp_vs_greedy(seed=seed or 7))


def _artifact_power(seconds: float, seed: int,
                 workers: int = 1) -> str:
    return render_power_ablation(
        run_power_comparison(seconds=min(seconds, 20.0), seed=seed))


def _artifact_sweeps(seconds: float, seed: int,
                     workers: int = 1) -> str:
    from repro.evaluation.sweeps import (
        render_sweep,
        run_chunk_size_sweep,
        run_rate_sweep,
    )
    per_point = min(seconds, 10.0)
    rate = render_sweep(
        "Extension: jitter/CPU vs stream rate",
        run_rate_sweep(seconds=per_point, seed=seed, workers=workers),
        "interval ms")
    chunk = render_sweep(
        "Extension: jitter/CPU vs chunk size at 5 ms",
        run_chunk_size_sweep(seconds=per_point, seed=seed, workers=workers),
        "chunk bytes")
    return rate + "\n\n" + chunk


def _artifact_fleet(seconds: float, seed: int, workers: int = 1,
                    clients: int = 64, shards: int = 4,
                    fidelity: str = "chunk", loss_rate: float = 0.0,
                    artifacts_dir: Optional[str] = None) -> str:
    from repro.evaluation.fleet import FleetConfig, run_fleet
    from repro.evaluation.reporting import render_fleet_report
    from repro.tivopc.population import PopulationConfig

    report = run_fleet(FleetConfig(
        population=PopulationConfig(
            clients=clients, seconds=min(seconds, 5.0), fidelity=fidelity,
            loss_rate=loss_rate, fleet_seed=seed),
        shards=shards, workers=workers), artifacts_dir=artifacts_dir)
    return render_fleet_report(report)


def _artifact_profile(seconds: float, seed: int,
                      workers: int = 1) -> str:
    """Hot-loop attribution for a Simple-server TiVoPC run."""
    from repro.sim.profile import profiled
    from repro.tivopc.client import MeasurementClient
    from repro.tivopc.server import SimpleServer
    from repro.tivopc.testbed import Testbed, TestbedConfig

    testbed = Testbed(TestbedConfig(seed=seed))
    testbed.start()
    MeasurementClient(testbed).start()
    SimpleServer(testbed).start()
    with profiled(testbed.sim) as profiler:
        testbed.run(min(seconds, 5.0))
    return profiler.render()


ARTIFACTS: Dict[str, Callable[..., str]] = {
    "fig1": _artifact_fig1,
    "fig9": _artifact_fig9,
    "fig10": _artifact_fig10,
    "table2": _artifact_table2,
    "table3": _artifact_table3,
    "table4": _artifact_table4,
    "fleet": _artifact_fleet,
    "ilp": _artifact_ilp,
    "power": _artifact_power,
    "profile": _artifact_profile,
    "sweeps": _artifact_sweeps,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("artifact",
                        choices=sorted(ARTIFACTS) + ["all"],
                        help="which artifact to regenerate")
    parser.add_argument("--seconds", type=float, default=25.0,
                        help="simulated seconds per scenario "
                             "(default: 25; the paper ran 600)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root RNG seed (default: 0)")
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool size for sweep/fleet artifacts "
                             "(default: 1 = sequential; 0 = one per CPU)")
    parser.add_argument("--clients", type=int, default=64,
                        help="fleet: subscriber count (default: 64)")
    parser.add_argument("--shards", type=int, default=4,
                        help="fleet: shard count (default: 4)")
    parser.add_argument("--fidelity", choices=("chunk", "detailed"),
                        default="chunk",
                        help="fleet: model tier (default: chunk)")
    parser.add_argument("--loss-rate", type=float, default=0.0,
                        help="fleet: chunk-tier Bernoulli loss "
                             "(default: 0)")
    parser.add_argument("--artifacts", default=None, metavar="DIR",
                        help="fleet: write shard-*.json + fleet.json here")
    args = parser.parse_args(argv)
    workers = None if args.workers == 0 else args.workers

    names = sorted(ARTIFACTS) if args.artifact == "all" else [args.artifact]
    for name in names:
        extra = {}
        if name == "fleet":
            extra = {"clients": args.clients, "shards": args.shards,
                     "fidelity": args.fidelity,
                     "loss_rate": args.loss_rate,
                     "artifacts_dir": args.artifacts}
        print(ARTIFACTS[name](args.seconds, args.seed, workers=workers,
                              **extra))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
