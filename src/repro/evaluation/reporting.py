"""Text rendering of experiment results — the paper's tables, regenerated.

Every formatter returns a plain string so benchmarks can ``print`` it
and EXPERIMENTS.md can embed it.  Measured values sit next to the
paper's published values wherever the paper gives numbers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

if TYPE_CHECKING:   # pragma: no cover - import cycle guard
    from repro.evaluation.fleet import FleetReport

from repro.evaluation.experiments import (
    ClientScenarioResult,
    IlpComparisonResult,
    PAPER_CLIENT_L2,
    PAPER_FIG10,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PowerComparisonResult,
    ServerScenarioResult,
)

__all__ = [
    "format_table",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_fig9",
    "render_fig10",
    "render_fig1",
    "render_client_l2",
    "render_fleet_report",
    "render_ilp_ablation",
    "render_power_ablation",
]


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[str]]) -> str:
    """Monospace-aligned table with a title rule."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _stats_cell(median: float, average: float, stdev: float,
                fmt: str = "{:.2f}") -> str:
    return (f"{fmt.format(median)} / {fmt.format(average)} / "
            f"{stdev:.4f}")


def render_table2(results: Dict[str, ServerScenarioResult]) -> str:
    """Table 2: client-side jitter statistics (milliseconds)."""
    rows: List[List[str]] = []
    for scenario in ("simple", "sendfile", "offloaded"):
        result = results[scenario]
        med, avg, std = result.jitter.row()
        paper = PAPER_TABLE2[scenario]
        rows.append([
            scenario,
            _stats_cell(med, avg, std),
            _stats_cell(*paper),
        ])
    return format_table(
        "Table 2: Client Side Jitter Statistics (ms, median/avg/stddev)",
        ["scenario", "measured", "paper"], rows)


def _render_cpu_table(title: str, scenarios: Sequence[str],
                      results, paper: Dict) -> str:
    rows: List[List[str]] = []
    for scenario in scenarios:
        result = results[scenario]
        med, avg, std = result.cpu.row(scale=100.0)
        paper_row = paper[scenario]
        rows.append([
            scenario,
            _stats_cell(med, avg, std / 100.0),
            _stats_cell(paper_row[0] * 100, paper_row[1] * 100,
                        paper_row[2]),
        ])
    return format_table(title, ["scenario", "measured %", "paper %"], rows)


def render_table3(results: Dict[str, ServerScenarioResult]) -> str:
    """Table 3: server-side CPU utilization."""
    return _render_cpu_table(
        "Table 3: Server Side CPU Utilization (%, median/avg/stddev)",
        ("idle", "simple", "sendfile", "offloaded"), results, PAPER_TABLE3)


def render_table4(results: Dict[str, ClientScenarioResult]) -> str:
    """Table 4: client-side CPU utilization."""
    return _render_cpu_table(
        "Table 4: Client Side CPU Utilization (%, median/avg/stddev)",
        ("idle", "user-space", "offloaded"), results, PAPER_TABLE4)


def render_fig9(results: Dict[str, ServerScenarioResult],
                bin_ms: float = 0.5, bar_scale: int = 40) -> str:
    """Figure 9: jitter histogram + CDF landmarks, as ASCII art."""
    blocks: List[str] = ["Figure 9: Jitter Distribution"]
    for scenario in ("simple", "sendfile", "offloaded"):
        result = results[scenario]
        samples = result.jitter_samples_ms
        blocks.append(f"\n[{scenario}] n={len(samples)}")
        bins = result.jitter_histogram(bin_ms)
        peak = max((count for _, count in bins), default=1)
        for edge, count in bins:
            bar = "#" * max(1 if count else 0,
                            round(bar_scale * count / peak))
            blocks.append(f"  {edge:6.2f}ms |{bar} {count}")
        cdf = result.jitter_cdf()
        landmarks = []
        for target in (0.10, 0.50, 0.90, 0.99):
            value = next((v for v, frac in cdf if frac >= target),
                         cdf[-1][0] if cdf else 0.0)
            landmarks.append(f"p{int(target * 100)}={value:.2f}ms")
        blocks.append("  CDF: " + "  ".join(landmarks))
    return "\n".join(blocks)


def render_fig10(results: Dict[str, ServerScenarioResult]) -> str:
    """Figure 10: normalized server kernel L2 miss rate."""
    idle_rate = results["idle"].l2_miss_rate
    rows: List[List[str]] = []
    for scenario in ("idle", "simple", "sendfile", "offloaded"):
        rate = results[scenario].l2_miss_rate
        normalized = rate / idle_rate if idle_rate else 0.0
        rows.append([scenario, f"{normalized:.3f}",
                     f"{PAPER_FIG10[scenario]:.3f}"])
    return format_table(
        "Figure 10: L2 Slowdown, Server Side (miss rate / idle miss rate)",
        ["scenario", "measured", "paper"], rows)


def render_client_l2(results: Dict[str, ClientScenarioResult]) -> str:
    """The Section 6.4 text claim: user-space client +12 % L2 misses."""
    idle_rate = results["idle"].l2_miss_rate
    rows = []
    for scenario in ("idle", "user-space", "offloaded"):
        rate = results[scenario].l2_miss_rate
        normalized = rate / idle_rate if idle_rate else 0.0
        rows.append([scenario, f"{normalized:.3f}",
                     f"{PAPER_CLIENT_L2[scenario]:.3f}"])
    return format_table(
        "Client Side L2 Misses (normalized to idle; paper: text, Sec 6.4)",
        ["scenario", "measured", "paper"], rows)


def render_fig1(series: Sequence[Tuple[int, float, float]]) -> str:
    """Figure 1: GHz/Gbps transmit and receive ratios by packet size."""
    rows = [[f"{size}", f"{tx:.3f}", f"{rx:.3f}"]
            for size, tx, rx in series]
    return format_table(
        "Figure 1: GHz/Gbps Ratio (Foong et al. cost model)",
        ["packet bytes", "transmit", "receive"], rows)


def render_ilp_ablation(result: IlpComparisonResult) -> str:
    """Render the ILP-vs-greedy ablation summary."""
    rows = [
        ["random graphs solved", str(result.graphs), ""],
        ["greedy infeasible", str(result.greedy_failures),
         "backtracking needed"],
        ["greedy suboptimal", str(result.greedy_suboptimal),
         '"not always optimal"'],
        ["mean objective gap", f"{result.mean_gap:.1%}", ""],
        ["worst objective gap", f"{result.worst_gap:.1%}", ""],
    ]
    return format_table(
        "Ablation: ILP (exact) vs greedy placement (Section 5 claim)",
        ["metric", "value", "paper claim"], rows)


def render_fleet_report(report: "FleetReport") -> str:
    """Render a fleet run: per-shard accounting, QoE percentiles,
    conservation verdict."""
    pop = report.config.population
    rows = [[str(s.shard_id), str(s.clients), str(s.events),
             str(s.totals["chunks_sent"]), str(s.totals["chunks_delivered"]),
             str(s.totals["chunks_lost"]), f"{s.wall_s:.3f}"]
            for s in report.shards]
    rows.append(["all", str(sum(s.clients for s in report.shards)),
                 str(report.events), str(report.totals["chunks_sent"]),
                 str(report.totals["chunks_delivered"]),
                 str(report.totals["chunks_lost"]),
                 f"{report.wall_s:.3f}"])
    shard_table = format_table(
        f"Fleet: {pop.clients} clients x {pop.seconds:g}s "
        f"({pop.fidelity} fidelity, seed {pop.fleet_seed}), "
        f"{report.config.shards} shards / {report.workers} workers",
        ["shard", "clients", "events", "sent", "delivered", "lost",
         "wall s"], rows)
    qoe_rows = [[metric,
                 f"{summary['p50']:.3f}", f"{summary['p90']:.3f}",
                 f"{summary['p99']:.3f}", f"{summary['max']:.3f}"]
                for metric, summary in sorted(report.qoe.items())]
    qoe_table = format_table(
        "Per-client QoE (ms)", ["metric", "p50", "p90", "p99", "max"],
        qoe_rows)
    verdict = ("conservation: OK (per shard and aggregate, exact sums)"
               if report.ok else
               "CONSERVATION VIOLATIONS:\n  " +
               "\n  ".join(report.violations))
    if report.degraded:
        reasons = report.supervision.get("quarantine_reasons", [])
        verdict += (
            f"\nDEGRADED: shards {report.missing_shards} missing after "
            f"retry exhaustion ({sum(s.clients for s in report.shards)}"
            f"/{pop.clients} clients reported; conservation covers "
            "completed shards only)")
        if reasons:
            verdict += "\n  " + "\n  ".join(reasons)
    sup = report.supervision
    supervision = (
        "supervision: "
        f"retries={sup.get('retries', 0)} "
        f"hedges={sup.get('hedges', 0)} "
        f"timeouts={sup.get('timeouts', 0)} "
        f"worker_deaths={sup.get('worker_deaths', 0)} "
        f"resumed={sup.get('resumed', 0)} "
        f"quarantined={sup.get('quarantined', 0)}")
    rate = (f"aggregate rate: {report.events_per_sec:,.0f} events/sec "
            f"over {report.wall_s:.3f}s wall")
    return "\n\n".join([shard_table, qoe_table, verdict, supervision,
                        rate])


def render_power_ablation(results: Dict[str, PowerComparisonResult]
                          ) -> str:
    """Render the per-scenario server-machine energy table."""
    rows = []
    for scenario in ("simple", "sendfile", "offloaded"):
        r = results[scenario]
        rows.append([scenario, f"{r.host_joules:.1f}",
                     f"{r.device_joules:.3f}", f"{r.total_joules:.1f}"])
    return format_table(
        "Ablation: server-machine energy (J) — offload argument #3",
        ["scenario", "host CPU J", "NIC CPU J", "machine total J"], rows)
