"""Supervised shard dispatch: crash-safe workers with retry and hedging.

``multiprocessing.Pool`` treats a dead worker as a protocol error: one
OOM-killed process and ``imap_unordered`` hangs or tears the whole run
down.  For a fleet run that shards millions of simulated subscribers
across hosts, partial failure is the *normal* case ("Fine-Grained
Computation Offload for Off-the-Shelf Servers" makes the same point for
deadline-bound offload), so the dispatcher here is built around it:

* **each worker owns a duplex pipe** — the parent assigns one task at a
  time to a specific process, so it always knows which shard a dead or
  wedged worker was holding;
* **death detection** via the process sentinel / ``exitcode`` (and EOF
  on the pipe): the dispatch is failed, the worker replaced, and the
  shard retried with capped exponential backoff up to
  ``max_retries`` extra attempts;
* **wall-clock timeouts**: a shard that exceeds ``shard_timeout_s`` is
  presumed wedged — its worker is killed and replaced, and the shard
  retried like any other failure;
* **quarantine**: a shard that exhausts its attempts is recorded as a
  :class:`TaskFailure` instead of poisoning the run — callers decide
  whether a partial result is acceptable (the fleet runner degrades
  into a ``degraded=true`` report);
* **hedging**: once the queue is drained and workers sit idle, the
  slowest straggler is speculatively duplicated onto an idle worker and
  the first result wins.  This is safe exactly because shard results
  are deterministic functions of ``(fleet_seed, shard_id)`` — a hedged
  run stays byte-identical to an unhedged one.

``workers=1`` runs the same retry/quarantine state machine sequentially
in-process and never touches multiprocessing (pinned by
``tests/test_evaluation_supervised.py``); chaos injection there raises
instead of exiting, so even the kill path is testable without a fork.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_ready
from typing import (Any, Callable, Dict, Hashable, List, Optional, Sequence,
                    Tuple)

from repro.errors import ReproError

__all__ = ["SupervisionPolicy", "SupervisionStats", "TaskFailure",
           "SupervisedPool"]


@dataclass(frozen=True)
class SupervisionPolicy:
    """Fault-handling knobs of one supervised dispatch."""

    # Extra attempts after the first (so a shard is dispatched at most
    # ``max_retries + 1`` times, hedges included).
    max_retries: int = 2
    # Capped exponential backoff before retry attempt k (k >= 1):
    # min(cap, base * 2**(k-1)).
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 1.0
    # Wall-clock budget per dispatch; None disables the watchdog.
    shard_timeout_s: Optional[float] = None
    # Speculative duplicates of stragglers once the queue is drained.
    hedge: bool = True
    # Minimum age of a dispatch before it qualifies as a straggler.
    hedge_after_s: float = 0.5
    # Supervisor poll interval (result wait + liveness scan cadence).
    poll_s: float = 0.02

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ReproError(f"max_retries must be >= 0: {self.max_retries}")
        if self.backoff_base_s < 0:
            raise ReproError(
                f"backoff_base_s must be >= 0: {self.backoff_base_s}")
        if self.backoff_cap_s < self.backoff_base_s:
            raise ReproError(
                f"backoff_cap_s ({self.backoff_cap_s}) below backoff_base_s "
                f"({self.backoff_base_s})")
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0:
            raise ReproError(
                f"shard_timeout_s must be positive: {self.shard_timeout_s}")
        if self.hedge_after_s < 0:
            raise ReproError(
                f"hedge_after_s must be >= 0: {self.hedge_after_s}")
        if self.poll_s <= 0:
            raise ReproError(f"poll_s must be positive: {self.poll_s}")

    def backoff_s(self, attempt: int) -> float:
        """Delay before dispatching retry ``attempt`` (1-based)."""
        if attempt < 1:
            return 0.0
        return min(self.backoff_cap_s,
                   self.backoff_base_s * (2 ** (attempt - 1)))


@dataclass
class SupervisionStats:
    """What the supervisor had to do during one dispatch."""

    retries: int = 0           # re-dispatches scheduled after a failure
    hedges: int = 0            # speculative straggler duplicates launched
    hedge_wins: int = 0        # hedges that returned before the original
    timeouts: int = 0          # dispatches reaped by the wall-clock watchdog
    worker_deaths: int = 0     # workers found dead (exitcode/sentinel/EOF)
    workers_replaced: int = 0  # replacement workers spawned
    quarantined: int = 0       # tasks abandoned after exhausting attempts

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dict (the report/artifact form)."""
        return {"retries": self.retries, "hedges": self.hedges,
                "hedge_wins": self.hedge_wins, "timeouts": self.timeouts,
                "worker_deaths": self.worker_deaths,
                "workers_replaced": self.workers_replaced,
                "quarantined": self.quarantined}


@dataclass
class TaskFailure:
    """A task abandoned after exhausting its attempts (quarantined)."""

    task_id: int
    key: Hashable                  # the caller-facing task key
    attempts: int
    errors: List[str] = field(default_factory=list)

    def summary(self) -> str:
        """One-line quarantine reason for reports and error messages."""
        last = self.errors[-1] if self.errors else "no error recorded"
        return (f"task {self.key}: quarantined after {self.attempts} "
                f"attempt(s); last error: {last}")


class _Slot:
    """One worker process and the dispatch it currently holds."""

    __slots__ = ("process", "conn", "task_id", "attempt", "started_at",
                 "hedged")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.task_id: Optional[int] = None
        self.attempt = 0
        self.started_at = 0.0
        self.hedged = False

    @property
    def idle(self) -> bool:
        return self.task_id is None


def _worker_main(fn, chaos, conn) -> None:
    """Worker loop: one task at a time over the slot's pipe.

    The chaos hook runs *before* the task body — a chaos kill exits the
    process exactly as an OOM kill would, mid-pickup, and the parent
    learns of it only through the sentinel/EOF, never a reply.
    """
    while True:
        try:
            msg = conn.recv()
        except EOFError:            # parent went away
            return
        if msg is None:             # orderly shutdown
            conn.close()
            return
        task_id, key, attempt, payload = msg
        try:
            if chaos is not None:
                chaos.apply(key, attempt)
            result = fn(payload)
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            conn.send((task_id, attempt, False,
                       f"{type(exc).__name__}: {exc}"))
        else:
            conn.send((task_id, attempt, True, result))


class SupervisedPool:
    """Crash-safe task dispatch over replaceable fork workers.

    ``run(items)`` returns ``{task_id: result}`` for every task that
    completed; tasks that exhausted their attempts land in
    ``self.failures`` (``{task_id: TaskFailure}``) and what the
    supervisor did is tallied in ``self.stats``.  ``completion_order``
    lists task ids in the order their first successful result arrived.

    ``chaos`` is consulted per ``(task key, attempt)`` pick — see
    :class:`repro.faults.fleet.FleetChaos` — and ``task_keys`` maps the
    dense internal task ids onto caller-facing keys (shard ids for the
    fleet), so chaos addressing survives a partial resume.
    """

    def __init__(self, fn: Callable, workers: int,
                 policy: Optional[SupervisionPolicy] = None,
                 chaos=None,
                 task_keys: Optional[Sequence[Hashable]] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1: {workers}")
        self.fn = fn
        self.workers = workers
        self.policy = policy or SupervisionPolicy()
        self.chaos = chaos
        self.task_keys = list(task_keys) if task_keys is not None else None
        self.stats = SupervisionStats()
        self.failures: Dict[int, TaskFailure] = {}
        self.completion_order: List[int] = []
        # Test seams: patched by the unit tests to avoid real sleeping.
        self._clock = time.monotonic
        self._sleep = time.sleep

    # -- public entry ---------------------------------------------------------

    def run(self, items: Sequence) -> Dict[int, Any]:
        """Dispatch every item; return ``{task_id: result}``."""
        items = list(items)
        if self.task_keys is not None and len(self.task_keys) != len(items):
            raise ReproError(
                f"task_keys length {len(self.task_keys)} != items "
                f"{len(items)}")
        self.stats = SupervisionStats()
        self.failures = {}
        self.completion_order = []
        if not items:
            return {}
        if self.workers == 1:
            return self._run_sequential(items)
        return self._run_supervised(items)

    def _key(self, task_id: int) -> Hashable:
        if self.task_keys is not None:
            return self.task_keys[task_id]
        return task_id

    # -- in-process path (workers=1: no multiprocessing, same policy) ---------

    def _run_sequential(self, items: Sequence) -> Dict[int, Any]:
        from repro.faults.fleet import ChaosStall     # local: cycle guard
        results: Dict[int, Any] = {}
        for task_id, item in enumerate(items):
            errors: List[str] = []
            attempt = 0
            while True:
                try:
                    if self.chaos is not None:
                        self.chaos.apply(self._key(task_id), attempt,
                                         in_process=True)
                    results[task_id] = self.fn(item)
                    self.completion_order.append(task_id)
                    break
                except Exception as exc:    # noqa: BLE001 - retried below
                    if isinstance(exc, ChaosStall):
                        self.stats.timeouts += 1
                    errors.append(f"attempt {attempt}: "
                                  f"{type(exc).__name__}: {exc}")
                    attempt += 1
                    if attempt > self.policy.max_retries:
                        self.failures[task_id] = TaskFailure(
                            task_id, self._key(task_id), attempt, errors)
                        self.stats.quarantined += 1
                        break
                    self.stats.retries += 1
                    backoff = self.policy.backoff_s(attempt)
                    if backoff > 0:
                        self._sleep(backoff)
        return results

    # -- supervised multi-worker path -----------------------------------------

    def _spawn(self, ctx) -> _Slot:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(target=_worker_main,
                              args=(self.fn, self.chaos, child_conn),
                              daemon=True)
        process.start()
        child_conn.close()
        return _Slot(process, parent_conn)

    def _run_supervised(self, items: Sequence) -> Dict[int, Any]:
        from repro.evaluation.parallel import fork_context
        ctx = fork_context()
        n = len(items)
        policy = self.policy
        results: Dict[int, Any] = {}
        errors: List[List[str]] = [[] for _ in range(n)]
        next_attempt = [0] * n     # attempts consumed (dispatches launched)
        active = [0] * n           # dispatches currently in flight
        pending = deque(range(n))  # ready to dispatch now
        delayed: List[Tuple[float, int]] = []   # (ready_at, task_id) retries

        slots = [self._spawn(ctx) for _ in range(min(self.workers, n))]

        def resolved(task_id: int) -> bool:
            return task_id in results or task_id in self.failures

        def dispatch(slot: _Slot, task_id: int, hedged: bool) -> None:
            attempt = next_attempt[task_id]
            next_attempt[task_id] += 1
            active[task_id] += 1
            slot.task_id = task_id
            slot.attempt = attempt
            slot.started_at = self._clock()
            slot.hedged = hedged
            msg = (task_id, self._key(task_id), attempt, items[task_id])
            try:
                slot.conn.send(msg)
            except (BrokenPipeError, OSError):
                # The worker died idle; replace it and send once more —
                # a second failure is a real dispatch failure.  replace()
                # marks the slot idle, so the dispatch state must be
                # restored or the supervisor would assign this worker a
                # second task and never poll for this dispatch's result.
                self.stats.worker_deaths += 1
                replace(slot)
                slot.task_id = task_id
                slot.attempt = attempt
                slot.started_at = self._clock()
                slot.hedged = hedged
                slot.conn.send(msg)

        def replace(slot: _Slot) -> None:
            if slot.process.is_alive():
                slot.process.terminate()
            slot.process.join(timeout=5.0)
            if slot.process.is_alive():    # pragma: no cover - stuck kill
                slot.process.kill()
                slot.process.join(timeout=5.0)
            try:
                slot.conn.close()
            except OSError:                # pragma: no cover - already gone
                pass
            fresh = self._spawn(ctx)
            slot.process, slot.conn = fresh.process, fresh.conn
            slot.task_id = None
            self.stats.workers_replaced += 1

        def fail_dispatch(task_id: int, attempt: int, reason: str) -> None:
            active[task_id] -= 1
            if resolved(task_id):
                return               # hedge sibling already won or failed
            errors[task_id].append(f"attempt {attempt}: {reason}")
            settle(task_id)

        def settle(task_id: int) -> None:
            """After a failed dispatch: retry, wait for a sibling, or
            quarantine."""
            if active[task_id] > 0:
                return               # a hedge/original is still running
            if next_attempt[task_id] > policy.max_retries:
                self.failures[task_id] = TaskFailure(
                    task_id, self._key(task_id), next_attempt[task_id],
                    errors[task_id])
                self.stats.quarantined += 1
                return
            ready_at = self._clock() + policy.backoff_s(
                next_attempt[task_id])
            delayed.append((ready_at, task_id))
            self.stats.retries += 1

        def on_result(slot: _Slot, msg) -> None:
            task_id, attempt, ok, payload = msg
            hedged = slot.hedged
            slot.task_id = None
            if ok:
                active[task_id] -= 1
                if not resolved(task_id):
                    results[task_id] = payload
                    self.completion_order.append(task_id)
                    if hedged:
                        self.stats.hedge_wins += 1
            else:
                fail_dispatch(task_id, attempt, payload)

        def on_death(slot: _Slot) -> None:
            task_id, attempt = slot.task_id, slot.attempt
            self.stats.worker_deaths += 1
            # Reap before reading the exit status — on the EOF path the
            # zombie hasn't been waited on yet and exitcode is None,
            # which would hide e.g. a chaos kill's distinctive 117.
            slot.process.join(timeout=1.0)
            code = slot.process.exitcode
            replace(slot)
            fail_dispatch(task_id, attempt,
                          f"worker died (exitcode {code})")

        try:
            while len(results) + len(self.failures) < n:
                now = self._clock()
                # Promote due retries.
                if delayed:
                    due = [entry for entry in delayed if entry[0] <= now]
                    if due:
                        delayed[:] = [entry for entry in delayed
                                      if entry[0] > now]
                        for _, task_id in sorted(due):
                            pending.append(task_id)
                # Assign ready tasks to idle workers.
                for slot in slots:
                    if not pending:
                        break
                    if slot.idle:
                        task_id = pending.popleft()
                        if not resolved(task_id):
                            dispatch(slot, task_id, hedged=False)
                # Hedge the slowest straggler onto an idle worker.
                if policy.hedge and not pending and not delayed:
                    idle = [s for s in slots if s.idle]
                    if idle:
                        stragglers = [
                            s for s in slots
                            if not s.idle and not resolved(s.task_id)
                            and active[s.task_id] == 1
                            and next_attempt[s.task_id] <= policy.max_retries
                            and now - s.started_at >= policy.hedge_after_s]
                        if stragglers:
                            slowest = min(stragglers,
                                          key=lambda s: s.started_at)
                            dispatch(idle[0], slowest.task_id, hedged=True)
                            self.stats.hedges += 1
                # Wait for a result, a death, or the poll tick.
                waitables = []
                for slot in slots:
                    if not slot.idle:
                        waitables.append(slot.conn)
                        waitables.append(slot.process.sentinel)
                if waitables:
                    ready = set(_wait_ready(waitables,
                                            timeout=policy.poll_s))
                    for slot in slots:
                        if slot.idle:
                            continue
                        if slot.conn in ready:
                            try:
                                on_result(slot, slot.conn.recv())
                            except (EOFError, OSError):
                                on_death(slot)
                        elif slot.process.sentinel in ready:
                            on_death(slot)
                else:
                    self._sleep(policy.poll_s)
                # Reap dispatches that blew the wall-clock budget.
                if policy.shard_timeout_s is not None:
                    now = self._clock()
                    for slot in slots:
                        if slot.idle:
                            continue
                        if now - slot.started_at > policy.shard_timeout_s:
                            task_id, attempt = slot.task_id, slot.attempt
                            self.stats.timeouts += 1
                            replace(slot)
                            fail_dispatch(
                                task_id, attempt,
                                f"timeout after "
                                f"{policy.shard_timeout_s:g}s wall")
        finally:
            for slot in slots:
                if slot.process.is_alive() and slot.idle:
                    try:
                        slot.conn.send(None)
                    except (BrokenPipeError, OSError):
                        pass
            for slot in slots:
                slot.process.join(timeout=0.5)
                if slot.process.is_alive():
                    slot.process.terminate()
                    slot.process.join(timeout=5.0)
                try:
                    slot.conn.close()
                except OSError:          # pragma: no cover - already gone
                    pass
        return results
