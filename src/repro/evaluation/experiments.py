"""Experiment drivers — one function per paper table/figure.

Each driver builds a fresh testbed, runs the scenario for a configurable
amount of simulated time, and returns a structured result object holding
both the measured values and the paper's published values, so the
benchmark harness (and EXPERIMENTS.md) can print paper-vs-measured rows
directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.layout import (
    BranchAndBoundSolver,
    BusCapabilityMatrix,
    ConstraintType,
    GreedySolver,
    LayoutGraph,
    MaximizeBusUsage,
    MaximizeOffloading,
)
from repro.errors import InfeasibleLayoutError
from repro.evaluation.foong import TcpCostModel, fig1_series
from repro.sim.rng import RandomStreams
from repro.tivopc.client import (
    MeasurementClient,
    OffloadedClient,
    UserSpaceClient,
)
from repro.tivopc.metrics import (
    PeriodicSampler,
    SummaryStats,
    cdf_points,
    histogram,
)
from repro.tivopc.server import (
    OffloadedServer,
    SendfileServer,
    SimpleServer,
)
from repro.tivopc.testbed import Testbed, TestbedConfig

__all__ = [
    "ServerScenarioResult",
    "ClientScenarioResult",
    "SERVER_SCENARIOS",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "run_server_scenario",
    "run_all_server_scenarios",
    "run_client_scenario",
    "run_all_client_scenarios",
    "run_fig1",
    "run_ilp_vs_greedy",
    "run_power_comparison",
]

SERVER_SCENARIOS = ("idle", "simple", "sendfile", "offloaded")
CLIENT_SCENARIOS = ("idle", "user-space", "offloaded")

# Published values (Tables 2-4), for paper-vs-measured reporting.
PAPER_TABLE2 = {
    "simple": (6.99, 7.00, 0.5521),
    "sendfile": (6.00, 5.99, 0.4720),
    "offloaded": (5.00, 5.00, 0.0369),
}
PAPER_TABLE3 = {
    "idle": (0.0290, 0.0286, 0.0009),
    "simple": (0.0750, 0.0750, 0.0012),
    "sendfile": (0.0590, 0.0620, 0.0008),
    "offloaded": (0.0290, 0.0286, 0.0009),
}
PAPER_TABLE4 = {
    "idle": (0.0290, 0.0286, 0.0009),
    "user-space": (0.0730, 0.0690, 0.0032),
    "offloaded": (0.0290, 0.0286, 0.0009),
}
# Figure 10, read off the bars: normalized kernel L2 miss rate.
PAPER_FIG10 = {"idle": 1.00, "simple": 1.07, "sendfile": 1.005,
               "offloaded": 1.00}
# Section 6.4 text: non-offloaded client generates 12 % more L2 misses.
PAPER_CLIENT_L2 = {"idle": 1.00, "user-space": 1.12, "offloaded": 1.00}

_SERVER_CLASSES = {"simple": SimpleServer, "sendfile": SendfileServer,
                   "offloaded": OffloadedServer}


@dataclass
class ServerScenarioResult:
    """One row of Tables 2/3 plus the Figure 9/10 raw material."""

    scenario: str
    jitter: Optional[SummaryStats]
    jitter_samples_ms: List[float]
    cpu: SummaryStats
    l2_miss_rate: float
    packets: int

    def jitter_histogram(self, bin_ms: float = 0.25):
        """Fixed-width histogram of the inter-arrival gaps."""
        return histogram(self.jitter_samples_ms, bin_ms)

    def jitter_cdf(self):
        """Empirical CDF points of the inter-arrival gaps."""
        return cdf_points(self.jitter_samples_ms)


def run_server_scenario(scenario: str, seconds: float = 30.0,
                        seed: int = 0) -> ServerScenarioResult:
    """Run one server variant (or 'idle') and collect all server-side
    metrics in a single pass."""
    if scenario not in SERVER_SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}; "
                         f"pick from {SERVER_SCENARIOS}")
    testbed = Testbed(TestbedConfig(seed=seed))
    testbed.start()
    client = MeasurementClient(testbed)
    client.start()
    server = None
    if scenario != "idle":
        server = _SERVER_CLASSES[scenario](testbed)
        server.start()
    sampler = PeriodicSampler(testbed.sim, testbed.server.machine.cpu,
                              testbed.server.machine.l2)
    testbed.sim.spawn(sampler.process(), name="sampler")
    testbed.run(seconds)

    samples = client.jitter.intervals_ms() if scenario != "idle" else []
    return ServerScenarioResult(
        scenario=scenario,
        jitter=SummaryStats.of(samples) if samples else None,
        jitter_samples_ms=samples,
        cpu=sampler.cpu_stats(),
        l2_miss_rate=sampler.miss_rate_stats().average,
        packets=client.jitter.packet_count,
    )


def run_all_server_scenarios(seconds: float = 30.0, seed: int = 0
                             ) -> Dict[str, ServerScenarioResult]:
    """All four server scenarios (idle + three servers), one run each."""
    return {scenario: run_server_scenario(scenario, seconds, seed)
            for scenario in SERVER_SCENARIOS}


@dataclass
class ClientScenarioResult:
    """One row of Table 4 plus the client L2 claim."""

    scenario: str
    cpu: SummaryStats
    l2_miss_rate: float
    chunks: int
    frames: int
    recorded_bytes: int


def run_client_scenario(scenario: str, seconds: float = 30.0,
                        seed: int = 0) -> ClientScenarioResult:
    """Client-side scenarios; the stream source is always the offloaded
    server (precise pacing isolates the client's own costs).  'idle'
    runs no client *and no stream* — the paper's unloaded baseline."""
    if scenario not in CLIENT_SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}; "
                         f"pick from {CLIENT_SCENARIOS}")
    testbed = Testbed(TestbedConfig(seed=seed))
    testbed.start()
    client = None
    if scenario == "user-space":
        client = UserSpaceClient(testbed)
        client.start()
    elif scenario == "offloaded":
        client = OffloadedClient(testbed)
        client.start()
    if scenario != "idle":
        OffloadedServer(testbed).start()
    sampler = PeriodicSampler(testbed.sim, testbed.client.machine.cpu,
                              testbed.client.machine.l2)
    testbed.sim.spawn(sampler.process(), name="sampler")
    testbed.run(seconds)

    return ClientScenarioResult(
        scenario=scenario,
        cpu=sampler.cpu_stats(),
        l2_miss_rate=sampler.miss_rate_stats().average,
        chunks=getattr(client, "chunks_received", 0) if client else 0,
        frames=getattr(client, "frames_shown", 0) if client else 0,
        recorded_bytes=getattr(client, "bytes_recorded", 0) if client else 0,
    )


def run_all_client_scenarios(seconds: float = 30.0, seed: int = 0
                             ) -> Dict[str, ClientScenarioResult]:
    """All three client scenarios (idle, user-space, offloaded)."""
    return {scenario: run_client_scenario(scenario, seconds, seed)
            for scenario in CLIENT_SCENARIOS}


# -- Figure 1 -------------------------------------------------------------------------

def run_fig1(model: Optional[TcpCostModel] = None
             ) -> List[Tuple[int, float, float]]:
    """The Figure-1 series: (size, tx ratio, rx ratio) rows."""
    return fig1_series(model or TcpCostModel())


# -- ablation: ILP vs greedy (Section 5) ---------------------------------------------------

@dataclass
class IlpComparisonResult:
    """Aggregate over random layout graphs."""

    graphs: int = 0
    greedy_failures: int = 0
    greedy_suboptimal: int = 0
    total_exact_objective: float = 0.0
    total_greedy_objective: float = 0.0
    exact_on_greedy_solved: float = 0.0
    worst_gap: float = 0.0

    @property
    def mean_gap(self) -> float:
        """Objective lost by greedy, over the instances it solved."""
        if self.exact_on_greedy_solved == 0:
            return 0.0
        return 1.0 - (self.total_greedy_objective
                      / self.exact_on_greedy_solved)


def _random_graph(rng, num_nodes: int, num_devices: int) -> LayoutGraph:
    devices = tuple(["host"] + [f"dev{i}" for i in range(num_devices)])
    graph = LayoutGraph(devices)
    for i in range(num_nodes):
        compat = [True] + [rng.random() < 0.6 for _ in range(num_devices)]
        graph.add_node(f"n{i}", compat,
                       price=rng.choice([1.0, 2.0, 4.0, 6.0, 8.0]))
    kinds = [ConstraintType.PULL, ConstraintType.GANG,
             ConstraintType.GANG_ASYM, ConstraintType.LINK]
    for _ in range(max(0, num_nodes - 1)):
        a, b = rng.sample(range(num_nodes), 2)
        graph.constrain(f"n{a}", f"n{b}", rng.choice(kinds))
    return graph


def run_ilp_vs_greedy(graphs: int = 40, num_nodes: int = 8,
                      num_devices: int = 3, seed: int = 7,
                      use_bus_objective: bool = True
                      ) -> IlpComparisonResult:
    """The Section-5 claim: greedy is not always optimal on complex
    layouts.  Random constrained graphs under the bus-usage objective
    (tight capability budgets make local choices costly)."""
    rng = RandomStreams(seed).stream("ilp-ablation")
    exact_solver = BranchAndBoundSolver()
    greedy_solver = GreedySolver()
    result = IlpComparisonResult()
    for _ in range(graphs):
        graph = _random_graph(rng, num_nodes, num_devices)
        if use_bus_objective:
            capability = BusCapabilityMatrix.uniform(
                graph.devices, rng.choice([4.0, 6.0, 8.0]))
            objective = MaximizeBusUsage(capability)
        else:
            objective = MaximizeOffloading()
        try:
            problem = objective.build(graph)
            exact = exact_solver.solve(problem)
        except InfeasibleLayoutError:
            continue
        result.graphs += 1
        result.total_exact_objective += exact.objective
        try:
            greedy = greedy_solver.solve(problem)
        except InfeasibleLayoutError:
            result.greedy_failures += 1
            continue
        result.total_greedy_objective += greedy.objective
        result.exact_on_greedy_solved += exact.objective
        if greedy.objective < exact.objective - 1e-9:
            result.greedy_suboptimal += 1
            gap = ((exact.objective - greedy.objective)
                   / max(exact.objective, 1e-9))
            result.worst_gap = max(result.worst_gap, gap)
    return result


# -- ablation: power (Section 1.1, argument 3) ---------------------------------------------

@dataclass
class PowerComparisonResult:
    scenario: str
    host_joules: float
    device_joules: float
    total_joules: float


def run_power_comparison(seconds: float = 20.0, seed: int = 0
                         ) -> Dict[str, PowerComparisonResult]:
    """Energy of the server machine under each server variant."""
    results: Dict[str, PowerComparisonResult] = {}
    for scenario in ("simple", "sendfile", "offloaded"):
        testbed = Testbed(TestbedConfig(seed=seed))
        testbed.start()
        MeasurementClient(testbed).start()
        _SERVER_CLASSES[scenario](testbed).start()
        testbed.run(seconds)
        power = testbed.server.machine.power
        host = power.component_energy("server-cpu").joules
        device = power.component_energy("nic0-cpu").joules
        results[scenario] = PowerComparisonResult(
            scenario=scenario, host_joules=host, device_joules=device,
            total_joules=power.total_joules())
    return results
