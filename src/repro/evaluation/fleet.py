"""The sharded fleet runner: populations across worker processes.

A single simulator process tops out near ~4×10^5 events/sec (PR 7's
timer wheel); the next order of magnitude is horizontal.  This module
partitions a subscriber population (:mod:`repro.tivopc.population`)
into shards, runs each shard's simulator in a persistent fork-context
worker pool, and folds the per-shard artifacts into one fleet report.

Determinism contract (pinned by ``tests/test_evaluation_fleet.py``):

* shard seeds derive as ``hash(fleet_seed, shard_id)`` through
  :class:`~repro.sim.rng.RandomStreams` (:func:`shard_seed`);
* a subscriber's trajectory depends only on the fleet seed and its
  *global* id, so ``shards=4, workers=4`` is point-identical to
  ``shards=4, workers=1``, and re-partitioning the same population into
  a different shard count preserves every per-client number — hence the
  aggregate conservation totals exactly;
* shard results are collected unordered (warm workers, no head-of-line
  blocking) but merged in shard-id order, and metric snapshots merge
  via :func:`repro.telemetry.merge.merge_snapshots` — so the canonical
  report is byte-identical whatever the completion order.

Wall-clock timings are the one intentionally non-deterministic part;
:meth:`FleetReport.canonical` exposes the report with them stripped,
which is what the determinism tests and artifact diffs compare.
Supervision activity (retries, hedges, worker deaths) is likewise
schedule-dependent and lives only in :meth:`FleetReport.artifact` —
a chaos-killed worker or a hedged straggler changes *how* the run got
there, never the canonical report.

Crash safety (pinned by the ``fleet-chaos`` CI job): dispatch runs
through :class:`~repro.evaluation.supervised.SupervisedPool`, so a
dead or wedged worker is detected, replaced and its shard retried with
capped backoff; shards that exhaust their retries are quarantined and
the run degrades into a partial report (``degraded=True``, exact
``missing_shards`` accounting, conservation checked over the shards
that completed) instead of dying wholesale.  ``resume_dir`` makes runs
restartable: shards whose ``shard-<id>.json`` artifact already exists
(and matches the run's seed/config fingerprint) are loaded, not rerun.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.evaluation.parallel import default_workers
from repro.evaluation.supervised import (SupervisedPool, SupervisionPolicy,
                                         SupervisionStats)
from repro.sim.rng import RandomStreams
from repro.telemetry.merge import merge_snapshots
from repro.telemetry.metrics import MetricsRegistry
from repro.tivopc.population import PopulationConfig, run_population
from repro import units

__all__ = ["FleetConfig", "ShardResult", "FleetReport", "shard_seed",
           "partition", "lpt_makespan", "run_fleet", "config_fingerprint",
           "SupervisionPolicy"]


@dataclass(frozen=True)
class FleetConfig:
    """One fleet run: a population plus its sharding/dispatch shape."""

    population: PopulationConfig = field(default_factory=PopulationConfig)
    shards: int = 4
    # None -> one worker per available CPU (affinity-aware).
    workers: Optional[int] = 1
    # Shards handed to a worker per pickup; 0 -> auto (1, i.e. dynamic
    # load balancing — shards are coarse enough that batching them would
    # only re-create stragglers).  Supervised dispatch always picks up
    # one shard at a time (retry/timeout granularity is the shard).
    chunksize: int = 0
    # Fault handling for the dispatch layer: retries/backoff, per-shard
    # wall-clock timeout, straggler hedging.
    supervision: SupervisionPolicy = field(
        default_factory=SupervisionPolicy)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ReproError(f"fleet needs >= 1 shard: {self.shards}")
        if self.shards > self.population.clients:
            raise ReproError(
                f"more shards ({self.shards}) than clients "
                f"({self.population.clients})")
        if self.chunksize < 0:
            raise ReproError(f"chunksize must be >= 0: {self.chunksize}")


def config_fingerprint(config: FleetConfig) -> str:
    """Stable digest of everything a shard artifact's numbers depend on.

    Stamped into every ``shard-<id>.json``; a resume run recomputes it
    and refuses artifacts minted under a different population, stream
    shape, seed or shard count — mixing those would silently splice two
    different experiments into one report.
    """
    pop = config.population
    payload = json.dumps({
        "clients": pop.clients, "seconds": pop.seconds,
        "fidelity": pop.fidelity, "loss_rate": pop.loss_rate,
        "fleet_seed": pop.fleet_seed,
        "stream_chunk_bytes": pop.stream.chunk_bytes,
        "stream_interval_ns": pop.stream.interval_ns,
        "shards": config.shards,
    }, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def shard_seed(fleet_seed: int, shard_id: int) -> int:
    """``hash(fleet_seed, shard_id)`` via the blessed stream derivation."""
    return RandomStreams(fleet_seed).derive(f"shard:{shard_id}")


def partition(clients: int, shards: int) -> List[range]:
    """Contiguous global-id slices, sizes differing by at most one."""
    if shards < 1 or shards > clients:
        raise ReproError(
            f"cannot partition {clients} clients into {shards} shards")
    base, extra = divmod(clients, shards)
    out: List[range] = []
    start = 0
    for shard_id in range(shards):
        size = base + (1 if shard_id < extra else 0)
        out.append(range(start, start + size))
        start += size
    return out


def lpt_makespan(walls: Sequence[float], workers: int) -> float:
    """Longest-processing-time makespan of ``walls`` over ``workers``.

    The dispatch model of the pool (greedy, longest-first is the
    adversarial bound): used by the bench harness to project multi-
    worker wall clock from measured per-shard walls when the local
    affinity mask is too small to measure the real thing.
    """
    if workers < 1:
        raise ReproError(f"workers must be >= 1: {workers}")
    loads = [0.0] * workers
    for wall in sorted(walls, reverse=True):
        loads[loads.index(min(loads))] += wall
    return max(loads) if loads else 0.0


@dataclass
class ShardResult:
    """One shard's run, as returned from a worker process."""

    shard_id: int
    seed: int                      # hash(fleet_seed, shard_id)
    clients: int
    events: int
    sim_ns: int
    wall_s: float                  # measured inside the worker
    totals: Dict[str, int]
    # Per-subscriber QoE series in global-id order (primitives, not
    # SubscriberStats objects: a 10^5-client shard must pickle fast).
    gids: List[int]
    first_ms: List[float]
    completion_ms: List[float]
    mean_gap_ms: List[float]
    max_gap_ms: List[float]
    snapshot: Dict[str, Any]       # per-shard metrics snapshot
    violations: List[str]

    def to_artifact(self, fingerprint: str) -> Dict[str, Any]:
        """The shard's full on-disk form — everything :func:`run_fleet`
        needs to resume without rerunning it, plus the config
        fingerprint the resume path validates."""
        return {
            "fingerprint": fingerprint,
            "shard_id": self.shard_id, "seed": self.seed,
            "clients": self.clients, "events": self.events,
            "sim_ns": self.sim_ns, "wall_s": self.wall_s,
            "totals": self.totals, "gids": self.gids,
            "first_ms": self.first_ms,
            "completion_ms": self.completion_ms,
            "mean_gap_ms": self.mean_gap_ms,
            "max_gap_ms": self.max_gap_ms,
            "snapshot": self.snapshot, "violations": self.violations,
        }

    _ARTIFACT_FIELDS = ("shard_id", "seed", "clients", "events", "sim_ns",
                        "wall_s", "totals", "gids", "first_ms",
                        "completion_ms", "mean_gap_ms", "max_gap_ms",
                        "snapshot", "violations")

    @classmethod
    def from_artifact(cls, data: Dict[str, Any]) -> "ShardResult":
        missing = [name for name in cls._ARTIFACT_FIELDS
                   if name not in data]
        if missing:
            raise ReproError(
                f"shard artifact is missing {missing} (written by an "
                "older release? rerun without resume_dir)")
        return cls(**{name: data[name] for name in cls._ARTIFACT_FIELDS})


def _completion_buckets(config: PopulationConfig) -> Tuple[int, ...]:
    """Histogram bounds for completion times: eighths of the horizon.

    Derived from the population config alone so every shard declares
    identical bounds (the merge requires it).
    """
    horizon_ns = units.s_to_ns(config.seconds)
    return tuple(sorted({max(1, horizon_ns * i // 8)
                         for i in range(1, 9)}))


def _shard_snapshot(shard_id: int, result, config: PopulationConfig
                    ) -> Dict[str, Any]:
    """The shard's mergeable metrics snapshot.

    Two views of every conservation counter: an aggregate family whose
    samples sum across shards at merge time, and a shard-labelled family
    whose samples stay disjoint — so the merged fleet snapshot carries
    both the fleet totals and the per-shard breakdown, and the exact-sum
    equality between them is checkable from the artifact alone.
    """
    registry = MetricsRegistry()
    totals = result.totals()
    chunks = registry.counter(
        "fleet_chunks_total", "Chunks by disposition", labels=("state",))
    by_shard = registry.counter(
        "fleet_shard_chunks_total", "Chunks by shard and disposition",
        labels=("shard", "state"))
    for state, key in (("sent", "chunks_sent"),
                       ("delivered", "chunks_delivered"),
                       ("lost", "chunks_lost")):
        chunks.labels(state=state).inc(totals[key])
        by_shard.labels(shard=str(shard_id), state=state).inc(totals[key])
    registry.counter(
        "fleet_frames_decoded_total",
        "Frames completed by subscriber decoders"
    ).inc(totals["frames_decoded"])
    registry.counter(
        "fleet_sim_events_total", "Simulation events dispatched"
    ).inc(result.events)
    registry.counter(
        "fleet_subscribers_total", "Subscriber appliances simulated"
    ).inc(len(result.subscribers))
    completion = registry.histogram(
        "fleet_completion_ns", "Per-subscriber last-arrival times",
        buckets=_completion_buckets(config))
    for stats in result.subscribers:
        if stats.completion_ns >= 0:
            completion.observe(stats.completion_ns)
    return registry.snapshot()


def _run_shard(task: Tuple[int, "FleetConfig"]) -> ShardResult:
    """Module-level worker body (must be picklable for the pool)."""
    shard_id, config = task
    pop = config.population
    gids = partition(pop.clients, config.shards)[shard_id]
    seed = shard_seed(pop.fleet_seed, shard_id)
    start = time.perf_counter()
    result = run_population(gids, pop, stream_seed=seed)
    wall_s = time.perf_counter() - start

    violations = [
        f"shard {shard_id} client {s.gid}: sent {s.chunks_sent} != "
        f"delivered {s.chunks_delivered} + lost {s.chunks_lost}"
        for s in result.subscribers if s.conservation_imbalance()]
    violations.extend(
        f"shard {shard_id}: {problem}"
        for problem in getattr(result, "channel_violations", []))

    return ShardResult(
        shard_id=shard_id, seed=seed, clients=len(result.subscribers),
        events=result.events, sim_ns=result.sim_ns, wall_s=wall_s,
        totals=result.totals(),
        gids=[s.gid for s in result.subscribers],
        first_ms=[units.ns_to_ms(s.first_arrival_ns)
                  for s in result.subscribers],
        completion_ms=[units.ns_to_ms(s.completion_ns)
                       for s in result.subscribers],
        mean_gap_ms=[s.mean_gap_ms for s in result.subscribers],
        max_gap_ms=[s.gap_max_ms for s in result.subscribers],
        snapshot=_shard_snapshot(shard_id, result, pop),
        violations=violations)


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of an already-sorted series."""
    if not ordered:
        return 0.0
    pos = (len(ordered) - 1) * q
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def _qoe_summary(values: Sequence[float]) -> Dict[str, float]:
    ordered = sorted(values)
    return {"p50": _percentile(ordered, 0.50),
            "p90": _percentile(ordered, 0.90),
            "p99": _percentile(ordered, 0.99),
            "max": ordered[-1] if ordered else 0.0}


@dataclass
class FleetReport:
    """The merged outcome of one fleet run."""

    config: FleetConfig
    workers: int
    shards: List[ShardResult]      # completed shards, in shard-id order
    totals: Dict[str, int]
    events: int
    wall_s: float                  # dispatch + shards + merge, measured
    events_per_sec: float          # events / wall_s
    qoe: Dict[str, Dict[str, float]]
    snapshot: Dict[str, Any]       # merged metrics snapshot
    violations: List[str]
    # Graceful degradation: shards quarantined after retry exhaustion
    # are *missing*, not fatal — totals/qoe/conservation cover the
    # shards that completed and the report says exactly what is absent.
    degraded: bool = False
    missing_shards: List[int] = field(default_factory=list)
    # Supervision activity (retries/hedges/timeouts/worker deaths,
    # resumed-shard count, quarantine reasons, metrics snapshot).
    # Schedule-dependent, hence artifact-only — never canonical.
    supervision: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every conservation and sum-equality check held."""
        return not self.violations

    @property
    def complete(self) -> bool:
        """True when every shard completed and every check held."""
        return self.ok and not self.degraded

    def canonical(self) -> Dict[str, Any]:
        """The deterministic projection of the report.

        Everything except measured wall-clock: byte-identical across
        worker counts, shard completion orders and machines for a given
        ``FleetConfig``.  ``json.dumps(..., sort_keys=True)`` of this is
        the determinism oracle the tests diff.
        """
        pop = self.config.population
        return {
            "population": {
                "clients": pop.clients, "seconds": pop.seconds,
                "fidelity": pop.fidelity, "loss_rate": pop.loss_rate,
                "fleet_seed": pop.fleet_seed,
            },
            "shards": [{
                "shard_id": s.shard_id, "seed": s.seed,
                "clients": s.clients, "events": s.events,
                "sim_ns": s.sim_ns, "totals": s.totals,
                "gids": s.gids, "first_ms": s.first_ms,
                "completion_ms": s.completion_ms,
                "mean_gap_ms": s.mean_gap_ms, "max_gap_ms": s.max_gap_ms,
                "snapshot": s.snapshot, "violations": s.violations,
            } for s in self.shards],
            "totals": self.totals,
            "events": self.events,
            "qoe": self.qoe,
            "snapshot": self.snapshot,
            "violations": self.violations,
            "degraded": self.degraded,
            "missing_shards": self.missing_shards,
        }

    def canonical_json(self) -> str:
        """Canonical projection as sorted-key JSON (byte-comparable)."""
        return json.dumps(self.canonical(), sort_keys=True, indent=2)

    def artifact(self) -> Dict[str, Any]:
        """The full report: canonical content plus measured timing and
        supervision activity (both schedule-dependent by nature)."""
        out = self.canonical()
        out["timing"] = {
            "workers": self.workers,
            "wall_s": self.wall_s,
            "events_per_sec": self.events_per_sec,
            "shard_walls_s": [s.wall_s for s in self.shards],
        }
        out["supervision"] = self.supervision
        return out


def _check_sums(shards: Sequence[ShardResult], totals: Dict[str, int],
                merged: Dict[str, Any]) -> List[str]:
    """Exact sum equality: merged snapshot vs shard totals vs report."""
    problems: List[str] = []
    state_keys = (("sent", "chunks_sent"), ("delivered", "chunks_delivered"),
                  ("lost", "chunks_lost"))
    # Report totals are the paper-arithmetic sum of shard totals.
    for key in totals:
        expected = sum(s.totals[key] for s in shards)
        if totals[key] != expected:
            problems.append(
                f"aggregate {key}: report says {totals[key]}, shard sum "
                f"is {expected}")
    # Merged aggregate family equals those sums exactly.
    by_state = {s["labels"]["state"]: s["value"]
                for s in merged["fleet_chunks_total"]["samples"]}
    for state, key in state_keys:
        if by_state.get(state, 0) != totals[key]:
            problems.append(
                f"merged fleet_chunks_total{{state={state}}} is "
                f"{by_state.get(state, 0)}, expected {totals[key]}")
    # And the shard-labelled family still carries each shard verbatim.
    by_shard = {(s["labels"]["shard"], s["labels"]["state"]): s["value"]
                for s in merged["fleet_shard_chunks_total"]["samples"]}
    for shard in shards:
        for state, key in state_keys:
            got = by_shard.get((str(shard.shard_id), state), 0)
            if got != shard.totals[key]:
                problems.append(
                    f"merged shard {shard.shard_id} {state} is {got}, "
                    f"shard artifact says {shard.totals[key]}")
    # Conservation in aggregate (per-shard was checked in the workers).
    if totals["chunks_sent"] != (totals["chunks_delivered"]
                                 + totals["chunks_lost"]):
        problems.append(
            f"aggregate conservation: sent {totals['chunks_sent']} != "
            f"delivered {totals['chunks_delivered']} + lost "
            f"{totals['chunks_lost']}")
    return problems


def _assert_distinct_seeds(seeds: Dict[int, int]) -> None:
    """Guard against a silent shard-seed collision.

    Two shards sharing a derived seed would draw identical named
    streams — in a pathological hash collision that means double-
    counted trajectories with no conservation check able to notice
    (each shard is internally consistent).  Fail loudly, naming the
    colliding shard ids.
    """
    by_seed: Dict[int, List[int]] = {}
    for shard_id, seed in seeds.items():
        by_seed.setdefault(seed, []).append(shard_id)
    collisions = {seed: ids for seed, ids in by_seed.items()
                  if len(ids) > 1}
    if collisions:
        detail = "; ".join(
            f"shards {sorted(ids)} all derive seed {seed}"
            for seed, ids in sorted(collisions.items()))
        raise ReproError(f"shard seed collision: {detail}")


def _load_resumed(resume_dir: str, config: FleetConfig,
                  seeds: Dict[int, int]) -> Dict[int, ShardResult]:
    """Load completed shards from a previous run's artifact directory.

    Every ``shard-<id>.json`` present must carry this run's config
    fingerprint and the shard's derived seed — a mismatch means the
    directory belongs to a different experiment, and splicing it in
    would corrupt the report, so it raises instead of being skipped.
    """
    fingerprint = config_fingerprint(config)
    resumed: Dict[int, ShardResult] = {}
    for shard_id in range(config.shards):
        path = os.path.join(resume_dir, f"shard-{shard_id}.json")
        if not os.path.exists(path):
            continue
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if data.get("fingerprint") != fingerprint:
            raise ReproError(
                f"resume artifact {path} has fingerprint "
                f"{data.get('fingerprint')!r}, this run's config is "
                f"{fingerprint!r} — different population/seed/shard "
                "count; refusing to splice experiments")
        if data.get("seed") != seeds[shard_id]:
            raise ReproError(
                f"resume artifact {path} ran with seed "
                f"{data.get('seed')}, this run derives "
                f"{seeds[shard_id]}")
        resumed[shard_id] = ShardResult.from_artifact(data)
    return resumed


def _supervision_snapshot(stats: SupervisionStats,
                          resumed: int) -> Dict[str, Any]:
    """Supervision counters as a mergeable telemetry snapshot.

    Same schema as the shard snapshots, so artifacts from several runs
    fold through :func:`repro.telemetry.merge.merge_snapshots` exactly
    like any other counter family.
    """
    registry = MetricsRegistry()
    registry.counter(
        "repro_fleet_shard_retries_total",
        "Shard dispatches retried after a failure or timeout"
    ).inc(stats.retries)
    registry.counter(
        "repro_fleet_shard_hedges_total",
        "Speculative straggler duplicates launched").inc(stats.hedges)
    registry.counter(
        "repro_fleet_shard_resumed_total",
        "Shards restored from resume artifacts instead of rerun"
    ).inc(resumed)
    registry.counter(
        "repro_fleet_shard_quarantined_total",
        "Shards abandoned after exhausting retries"
    ).inc(stats.quarantined)
    registry.counter(
        "repro_fleet_shard_timeouts_total",
        "Shard dispatches reaped by the wall-clock watchdog"
    ).inc(stats.timeouts)
    registry.counter(
        "repro_fleet_worker_deaths_total",
        "Worker processes found dead and replaced"
    ).inc(stats.worker_deaths)
    return registry.snapshot()


def run_fleet(config: FleetConfig,
              artifacts_dir: Optional[str] = None,
              resume_dir: Optional[str] = None,
              chaos=None) -> FleetReport:
    """Run the fleet; optionally write per-shard + merged artifacts.

    ``artifacts_dir`` gets one ``shard-<id>.json`` per completed shard
    (the worker's full result, fingerprinted for resume), a
    ``fleet.json`` holding :meth:`FleetReport.artifact`, and a
    ``fleet.canonical.json`` holding the byte-comparable deterministic
    projection.

    ``resume_dir`` skips shards whose validated artifact already exists
    there (pass the previous run's ``artifacts_dir``); ``chaos`` is a
    :class:`~repro.faults.fleet.FleetChaos` host-fault schedule for the
    dispatch layer.  Shards that exhaust their retries degrade the run
    (``degraded=True`` with exact missing-shard accounting) instead of
    failing it.
    """
    workers = config.workers
    if workers is None:
        workers = default_workers()
    seeds = {shard_id: shard_seed(config.population.fleet_seed, shard_id)
             for shard_id in range(config.shards)}
    _assert_distinct_seeds(seeds)

    start = time.perf_counter()
    by_id: Dict[int, ShardResult] = {}
    if resume_dir is not None:
        by_id.update(_load_resumed(resume_dir, config, seeds))
    resumed_ids = sorted(by_id)

    todo = [shard_id for shard_id in range(config.shards)
            if shard_id not in by_id]
    stats = SupervisionStats()
    quarantine_reasons: Dict[int, str] = {}
    if todo:
        pool = SupervisedPool(
            _run_shard, workers=min(workers, len(todo)),
            policy=config.supervision, chaos=chaos, task_keys=todo)
        for result in pool.run(
                [(shard_id, config) for shard_id in todo]).values():
            by_id[result.shard_id] = result
        stats = pool.stats
        quarantine_reasons = {
            failure.key: failure.summary()
            for failure in pool.failures.values()}

    shards = [by_id[shard_id] for shard_id in sorted(by_id)]
    missing = sorted(shard_id for shard_id in range(config.shards)
                     if shard_id not in by_id)
    degraded = bool(missing)

    merged = merge_snapshots([s.snapshot for s in shards])
    totals = ({key: sum(s.totals[key] for s in shards)
               for key in shards[0].totals} if shards else {})
    violations = [v for s in shards for v in s.violations]
    if shards:
        violations.extend(_check_sums(shards, totals, merged))
    qoe = {
        "first_ms": _qoe_summary([v for s in shards for v in s.first_ms]),
        "completion_ms": _qoe_summary(
            [v for s in shards for v in s.completion_ms]),
        "mean_gap_ms": _qoe_summary(
            [v for s in shards for v in s.mean_gap_ms]),
        "max_gap_ms": _qoe_summary(
            [v for s in shards for v in s.max_gap_ms]),
    }
    wall_s = time.perf_counter() - start

    supervision = dict(stats.as_dict())
    supervision["resumed"] = len(resumed_ids)
    supervision["resumed_shards"] = resumed_ids
    supervision["quarantine_reasons"] = [
        quarantine_reasons[shard_id]
        for shard_id in sorted(quarantine_reasons)]
    supervision["snapshot"] = _supervision_snapshot(stats,
                                                    len(resumed_ids))

    report = FleetReport(
        config=config, workers=workers, shards=shards, totals=totals,
        events=sum(s.events for s in shards), wall_s=wall_s,
        events_per_sec=sum(s.events for s in shards) / wall_s
        if wall_s > 0 else 0.0,
        qoe=qoe, snapshot=merged, violations=violations,
        degraded=degraded, missing_shards=missing,
        supervision=supervision)

    if artifacts_dir is not None:
        fingerprint = config_fingerprint(config)
        os.makedirs(artifacts_dir, exist_ok=True)
        for shard in shards:
            path = os.path.join(artifacts_dir,
                                f"shard-{shard.shard_id}.json")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(shard.to_artifact(fingerprint), handle,
                          sort_keys=True, indent=2)
                handle.write("\n")
        path = os.path.join(artifacts_dir, "fleet.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report.artifact(), handle, sort_keys=True, indent=2)
            handle.write("\n")
        path = os.path.join(artifacts_dir, "fleet.canonical.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(report.canonical_json())
            handle.write("\n")
    return report
