"""``python -m repro.evaluation`` — regenerate paper artifacts."""

from repro.evaluation.cli import main

raise SystemExit(main())
